// Tests for the batched semi-Lagrangian advection solver (Algorithm 2):
// exactness against the analytic shift solution, conservation, method
// agreement and multi-step stability.
#include "advection/semi_lagrangian.hpp"
#include "bsplines/knots.hpp"
#include "parallel/deep_copy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

namespace {

using namespace pspl;
using advection::BatchedAdvection1D;
using advection::uniform_velocities;
using bsplines::BSplineBasis;

constexpr double two_pi = 2.0 * std::numbers::pi;

double initial_profile(double x)
{
    return 1.0 + 0.5 * std::sin(two_pi * x) + 0.25 * std::cos(2.0 * two_pi * x);
}

/// Fill f(j, i) = profile(x_i) for every velocity row.
View2D<double> initial_condition(const BatchedAdvection1D& adv)
{
    View2D<double> f("f", adv.nv(), adv.nx());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = initial_profile(adv.points()(i));
        }
    }
    return f;
}

TEST(Transpose, RoundTrip)
{
    View2D<double> a("a", 5, 8);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            a(i, j) = static_cast<double>(i * 8 + j);
        }
    }
    View2D<double> at("at", 8, 5);
    View2D<double> back("back", 5, 8);
    advection::transpose_host(a, at);
    advection::transpose_host(at, back);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_EQ(at(j, i), a(i, j));
            EXPECT_EQ(back(i, j), a(i, j));
        }
    }
}

TEST(Advection, ZeroVelocityIsIdentity)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    View1D<double> v("v", 4); // all zero
    BatchedAdvection1D adv(basis, v, 0.1);
    auto f = initial_condition(adv);
    const auto f0 = clone(f);
    adv.step(f);
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            EXPECT_NEAR(f(j, i), f0(j, i), 1e-12);
        }
    }
}

class AdvectionParam
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(AdvectionParam, OneStepMatchesAnalyticShift)
{
    const auto [degree, uniform] = GetParam();
    const std::size_t nx = 128;
    const auto basis =
            uniform ? BSplineBasis::uniform(degree, nx, 0.0, 1.0)
                    : BSplineBasis::non_uniform(
                              degree,
                              bsplines::stretched_breaks(nx, 0.0, 1.0, 0.3));
    const auto v = uniform_velocities(5, -2.0, 2.0);
    const double dt = 0.013;
    BatchedAdvection1D::Config cfg;
    BatchedAdvection1D adv(basis, v, dt, cfg);
    auto f = initial_condition(adv);
    adv.step(f);

    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            const double exact =
                    initial_profile(adv.points()(i) - v(j) * dt);
            EXPECT_NEAR(f(j, i), exact, 2e-5)
                    << "degree " << degree << " j=" << j << " i=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DegreesGrids, AdvectionParam,
                         ::testing::Combine(::testing::Values(3, 4, 5),
                                            ::testing::Bool()),
                         [](const auto& info) {
                             const int d = std::get<0>(info.param);
                             const bool u = std::get<1>(info.param);
                             return std::string("deg") + std::to_string(d)
                                    + (u ? "_uniform" : "_nonuniform");
                         });

TEST(Advection, MassIsConserved)
{
    // Periodic advection conserves the integral of f; with a uniform grid
    // the midpoint-rule sum is exactly the integral of the spline up to
    // interpolation error.
    const auto basis = BSplineBasis::uniform(3, 100, 0.0, 1.0);
    const auto v = uniform_velocities(3, 0.5, 1.5);
    BatchedAdvection1D adv(basis, v, 0.02);
    auto f = initial_condition(adv);
    auto mass = [&](std::size_t j) {
        double m = 0.0;
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            m += f(j, i);
        }
        return m;
    };
    std::vector<double> m0(adv.nv());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        m0[j] = mass(j);
    }
    for (int s = 0; s < 10; ++s) {
        adv.step(f);
    }
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        EXPECT_NEAR(mass(j), m0[j], 1e-6 * std::abs(m0[j]));
    }
}

TEST(Advection, FullPeriodReturnsToInitialCondition)
{
    // v*T = L: after nsteps with dt = L/(v*nsteps), the profile returns to
    // its starting position; the only error left is interpolation
    // diffusion.
    const std::size_t nx = 128;
    const auto basis = BSplineBasis::uniform(5, nx, 0.0, 1.0);
    View1D<double> v("v", 1);
    v(0) = 1.0;
    const int nsteps = 20;
    const double dt = 1.0 / static_cast<double>(nsteps);
    BatchedAdvection1D adv(basis, v, dt);
    auto f = initial_condition(adv);
    const auto f0 = clone(f);
    for (int s = 0; s < nsteps; ++s) {
        adv.step(f);
    }
    for (std::size_t i = 0; i < nx; ++i) {
        EXPECT_NEAR(f(0, i), f0(0, i), 1e-6);
    }
}

TEST(Advection, DirectAndIterativeMethodsAgree)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    const auto v = uniform_velocities(4, -1.0, 1.0);
    const double dt = 0.01;

    BatchedAdvection1D::Config direct_cfg;
    direct_cfg.method = BatchedAdvection1D::Method::Direct;
    BatchedAdvection1D direct(basis, v, dt, direct_cfg);

    BatchedAdvection1D::Config iter_cfg;
    iter_cfg.method = BatchedAdvection1D::Method::Iterative;
    iter_cfg.iterative.kind = iterative::IterativeKind::BiCGStab;
    iter_cfg.iterative.config.tolerance = 1e-14;
    BatchedAdvection1D iter(basis, v, dt, iter_cfg);

    auto f1 = initial_condition(direct);
    auto f2 = clone(f1);
    direct.step(f1);
    const auto stats = iter.step(f2);
    EXPECT_TRUE(stats.all_converged);
    EXPECT_GT(stats.max_iterations, 0u);

    for (std::size_t j = 0; j < direct.nv(); ++j) {
        for (std::size_t i = 0; i < direct.nx(); ++i) {
            EXPECT_NEAR(f1(j, i), f2(j, i), 1e-9);
        }
    }
}

TEST(Advection, BuilderVersionsGiveIdenticalDynamics)
{
    const auto basis = BSplineBasis::uniform(4, 48, 0.0, 1.0);
    const auto v = uniform_velocities(3, 0.1, 0.9);
    const double dt = 0.015;
    std::vector<View2D<double>> results;
    for (const auto version :
         {core::BuilderVersion::Baseline, core::BuilderVersion::Fused,
          core::BuilderVersion::FusedSpmv}) {
        BatchedAdvection1D::Config cfg;
        cfg.version = version;
        BatchedAdvection1D adv(basis, v, dt, cfg);
        auto f = initial_condition(adv);
        for (int s = 0; s < 3; ++s) {
            adv.step(f);
        }
        results.push_back(f);
    }
    for (std::size_t j = 0; j < 3; ++j) {
        for (std::size_t i = 0; i < 48; ++i) {
            EXPECT_NEAR(results[0](j, i), results[1](j, i), 1e-12);
            EXPECT_NEAR(results[0](j, i), results[2](j, i), 1e-12);
        }
    }
}

TEST(Advection, FusedTransposeMatchesStandardPath)
{
    // The transpose-free variant (zero-copy transposed view, paper §V-C
    // future work) must be bit-identical to the standard Algorithm 2 path.
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    const auto v = uniform_velocities(5, -1.5, 1.5);
    const double dt = 0.011;

    BatchedAdvection1D standard(basis, v, dt);
    BatchedAdvection1D::Config fused_cfg;
    fused_cfg.fuse_transpose = true;
    BatchedAdvection1D fused(basis, v, dt, fused_cfg);

    auto f1 = initial_condition(standard);
    auto f2 = clone(f1);
    for (int s = 0; s < 4; ++s) {
        standard.step(f1);
        fused.step(f2);
    }
    for (std::size_t j = 0; j < standard.nv(); ++j) {
        for (std::size_t i = 0; i < standard.nx(); ++i) {
            EXPECT_DOUBLE_EQ(f1(j, i), f2(j, i));
        }
    }
}

TEST(TransposedView, SharesDataAndSwapsIndices)
{
    View2D<double> m("m", 3, 5);
    m(1, 4) = 7.5;
    auto t = pspl::transposed_view(m);
    EXPECT_EQ(t.extent(0), 5u);
    EXPECT_EQ(t.extent(1), 3u);
    EXPECT_EQ(t(4, 1), 7.5);
    t(0, 2) = -2.0;
    EXPECT_EQ(m(2, 0), -2.0);
    EXPECT_EQ(t.data(), m.data());
}

TEST(Advection, ClampedDomainAdvectsInteriorCorrectly)
{
    // Non-periodic (clamped) advection: feet that leave the domain are
    // clamped (constant inflow of the boundary value). For a compactly
    // supported bump away from the boundaries, the interior solution is the
    // exact shift.
    const std::size_t ncells = 128;
    const auto basis = BSplineBasis::clamped_uniform(3, ncells, 0.0, 1.0);
    View1D<double> v("v", 2);
    v(0) = 0.5;
    v(1) = -0.5;
    const double dt = 0.02;
    BatchedAdvection1D adv(basis, v, dt);
    auto bump = [](double x) {
        const double d = (x - 0.5) / 0.07;
        return std::exp(-d * d);
    };
    View2D<double> f("f", 2, adv.nx());
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = bump(adv.points()(i));
        }
    }
    for (int s = 0; s < 5; ++s) {
        adv.step(f);
    }
    const double t = 5.0 * dt;
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            const double x = adv.points()(i);
            if (x > 0.15 && x < 0.85) {
                EXPECT_NEAR(f(j, i), bump(x - v(j) * t), 1e-4)
                        << "j=" << j << " x=" << x;
            }
        }
    }
}

TEST(Advection, RejectsWrongShape)
{
    const auto basis = BSplineBasis::uniform(3, 32, 0.0, 1.0);
    const auto v = uniform_velocities(4, -1.0, 1.0);
    BatchedAdvection1D adv(basis, v, 0.01);
    View2D<double> bad("bad", 4, 31);
    EXPECT_DEATH(adv.step(bad), "Nv, Nx");
}

TEST(Advection, CflLargerThanOneIsStillStable)
{
    // Semi-Lagrangian schemes are not CFL-limited: a step with v*dt > dx
    // must stay bounded and accurate.
    const std::size_t nx = 64;
    const auto basis = BSplineBasis::uniform(3, nx, 0.0, 1.0);
    View1D<double> v("v", 1);
    v(0) = 5.0;
    const double dt = 0.05; // v*dt = 0.25 = 16 cells
    BatchedAdvection1D adv(basis, v, dt);
    auto f = initial_condition(adv);
    adv.step(f);
    for (std::size_t i = 0; i < nx; ++i) {
        const double exact = initial_profile(adv.points()(i) - 0.25);
        EXPECT_NEAR(f(0, i), exact, 1e-3);
    }
}

} // namespace
