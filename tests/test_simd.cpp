// Tests for the SIMD-across-batch layer: pack arithmetic, masked tail
// handling, strided load/store round-trips, the for_each_batch_simd
// dispatch, and end-to-end agreement of the SIMD builder/evaluator paths
// with the scalar ones at awkward batch sizes (1, W-1, W, W+1, large).
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "bsplines/knots.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/simd_view.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numbers>
#include <tuple>
#include <vector>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using core::BuilderVersion;
using core::SplineBuilder;
using core::SplineEvaluator;

std::uint64_t ulp_distance(double a, double b)
{
    const auto lex = [](double d) {
        std::uint64_t u;
        std::memcpy(&u, &d, sizeof(u));
        return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
    };
    const std::uint64_t x = lex(a);
    const std::uint64_t y = lex(b);
    return x > y ? x - y : y - x;
}

// ---------------------------------------------------------------------------
// Pack arithmetic, over every width the dispatch can pick.
// ---------------------------------------------------------------------------

template <class Pack>
class SimdPackTyped : public ::testing::Test
{
};

using PackTypes = ::testing::Types<simd<double, 2>, simd<double, 4>,
                                   simd<double, 8>, simd<float, 4>,
                                   simd<float, 8>, simd<float, 16>>;
TYPED_TEST_SUITE(SimdPackTyped, PackTypes);

TYPED_TEST(SimdPackTyped, BroadcastAndLaneAccess)
{
    using T = typename TypeParam::value_type;
    const TypeParam x(T(3));
    for (int l = 0; l < TypeParam::width; ++l) {
        EXPECT_EQ(x[l], T(3));
    }
    TypeParam y(T(0));
    y.set(1, T(7));
    EXPECT_EQ(y[0], T(0));
    EXPECT_EQ(y[1], T(7));
}

TYPED_TEST(SimdPackTyped, ElementwiseArithmeticMatchesScalar)
{
    using T = typename TypeParam::value_type;
    constexpr int W = TypeParam::width;
    T a_in[W];
    T b_in[W];
    for (int l = 0; l < W; ++l) {
        a_in[l] = T(1) + T(l);
        b_in[l] = T(2) - T(l) / T(4);
    }
    const auto a = TypeParam::load(a_in);
    const auto b = TypeParam::load(b_in);
    const auto sum = a + b;
    const auto diff = a - b;
    const auto prod = a * b;
    const auto quot = a / b;
    const auto fma = a * T(2) + b - T(1);
    const auto neg = -a;
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ(sum[l], a_in[l] + b_in[l]);
        EXPECT_EQ(diff[l], a_in[l] - b_in[l]);
        EXPECT_EQ(prod[l], a_in[l] * b_in[l]);
        EXPECT_EQ(quot[l], a_in[l] / b_in[l]);
        EXPECT_EQ(fma[l], a_in[l] * T(2) + b_in[l] - T(1));
        EXPECT_EQ(neg[l], -a_in[l]);
    }
}

TYPED_TEST(SimdPackTyped, CompoundAssignment)
{
    using T = typename TypeParam::value_type;
    constexpr int W = TypeParam::width;
    TypeParam x(T(10));
    x += TypeParam(T(2));
    x -= T(1);
    x *= T(3);
    x /= TypeParam(T(2));
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ(x[l], ((T(10) + T(2) - T(1)) * T(3)) / T(2));
    }
}

TYPED_TEST(SimdPackTyped, ContiguousLoadStoreRoundTrip)
{
    using T = typename TypeParam::value_type;
    constexpr int W = TypeParam::width;
    // Offset by one to exercise element-aligned (not pack-aligned) access.
    std::vector<T> src(W + 1);
    for (int l = 0; l <= W; ++l) {
        src[static_cast<std::size_t>(l)] = T(l) + T(1) / T(2);
    }
    const auto x = TypeParam::load(src.data() + 1);
    std::vector<T> dst(W + 1, T(0));
    x.store(dst.data() + 1);
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ(dst[static_cast<std::size_t>(l + 1)],
                  src[static_cast<std::size_t>(l + 1)]);
    }
}

TYPED_TEST(SimdPackTyped, StridedLoadStoreRoundTrip)
{
    using T = typename TypeParam::value_type;
    constexpr int W = TypeParam::width;
    constexpr std::ptrdiff_t stride = 3;
    std::vector<T> src(static_cast<std::size_t>(W * stride), T(-1));
    for (int l = 0; l < W; ++l) {
        src[static_cast<std::size_t>(l * stride)] = T(l * l);
    }
    const auto x = TypeParam::load(src.data(), stride);
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ(x[l], T(l * l));
    }
    std::vector<T> dst(static_cast<std::size_t>(W * stride), T(-1));
    x.store(dst.data(), stride);
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ(dst[static_cast<std::size_t>(l * stride)], T(l * l));
        if (stride > 1) {
            EXPECT_EQ(dst[static_cast<std::size_t>(l * stride) + 1], T(-1))
                    << "store leaked outside its lanes";
        }
    }
}

TYPED_TEST(SimdPackTyped, PartialLoadZeroFillsAndPartialStoreMasks)
{
    using T = typename TypeParam::value_type;
    constexpr int W = TypeParam::width;
    std::vector<T> src(W);
    for (int l = 0; l < W; ++l) {
        src[static_cast<std::size_t>(l)] = T(l + 1);
    }
    for (int lanes = 0; lanes <= W; ++lanes) {
        const auto x = TypeParam::load_partial(src.data(), 1, lanes);
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(x[l], l < lanes ? src[static_cast<std::size_t>(l)] : T(0));
        }
        std::vector<T> dst(W, T(-7));
        x.store_partial(dst.data(), 1, lanes);
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(dst[static_cast<std::size_t>(l)],
                      l < lanes ? src[static_cast<std::size_t>(l)] : T(-7));
        }
    }
}

TYPED_TEST(SimdPackTyped, DeadTailLanesStayFiniteThroughDivision)
{
    using T = typename TypeParam::value_type;
    constexpr int W = TypeParam::width;
    std::vector<T> src(W, T(5));
    const auto x = TypeParam::load_partial(src.data(), 1, 1);
    const auto y = x / T(2) - x * T(3); // zero lanes: 0/2 - 0*3 = 0
    for (int l = 1; l < W; ++l) {
        EXPECT_EQ(y[l], T(0));
        EXPECT_TRUE(std::isfinite(static_cast<double>(y[l])));
    }
}

// ---------------------------------------------------------------------------
// f32 <-> f64 pack conversion (the mixed-precision staging primitives).
// ---------------------------------------------------------------------------

template <int W>
void narrow_widen_round_trip()
{
    // Lane values: exactly float-representable (must round-trip bit-exact
    // through narrow/widen) plus one that float must round (must match the
    // scalar static_cast rounding, lane for lane).
    std::vector<double> lo_v(W);
    std::vector<double> hi_v(W);
    for (int l = 0; l < W; ++l) {
        lo_v[static_cast<std::size_t>(l)] = -3.0 + 0.5 * l; // exact in float
        hi_v[static_cast<std::size_t>(l)] = 0.1 * (l + 1);  // rounds
    }
    const auto lo = simd<double, W>::load(lo_v.data());
    const auto hi = simd<double, W>::load(hi_v.data());
    const simd<float, 2 * W> f = simd_narrow(lo, hi);
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ(f[l], static_cast<float>(lo[l])) << "lane " << l;
        EXPECT_EQ(f[W + l], static_cast<float>(hi[l])) << "lane " << W + l;
    }
    const simd<double, W> back_lo = simd_widen_lo(f);
    const simd<double, W> back_hi = simd_widen_hi(f);
    for (int l = 0; l < W; ++l) {
        // Widening is exact, so the exact lanes round-trip bit-identically
        // and the rounded lanes equal the double of their float rounding.
        EXPECT_EQ(back_lo[l], lo[l]) << "lane " << l;
        EXPECT_EQ(back_hi[l],
                  static_cast<double>(static_cast<float>(hi[l])))
                << "lane " << l;
    }
}

TEST(SimdConvert, NarrowWidenRoundTripAllWidths)
{
    narrow_widen_round_trip<2>();
    narrow_widen_round_trip<4>();
    narrow_widen_round_trip<8>();
}

TEST(SimdConvert, FloatMaskedTailRoundTrip)
{
    // Partial load/store at the float pack widths the mixed pipeline uses
    // for its tail handling (W = 8 on AVX2, W = 16 on AVX-512).
    const auto tail_case = [](auto pack_tag, int live) {
        using Pack = decltype(pack_tag);
        constexpr int W = Pack::width;
        std::vector<float> src(W);
        for (int l = 0; l < W; ++l) {
            src[l] = 1.5f * static_cast<float>(l + 1);
        }
        const Pack x = Pack::load_partial(src.data(), 1, live);
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(x[l], l < live ? src[l] : 0.0f) << "lane " << l;
        }
        std::vector<float> out(W, -7.0f);
        x.store_partial(out.data(), 1, live);
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(out[l], l < live ? src[l] : -7.0f) << "lane " << l;
        }
    };
    for (int live = 1; live < 8; ++live) {
        tail_case(simd<float, 8>{}, live);
    }
    for (int live : {1, 7, 8, 9, 15}) {
        tail_case(simd<float, 16>{}, live);
    }
}

TEST(SimdMask, PrefixMaskSelectAndWhere)
{
    constexpr int W = 4;
    const auto k = simd_mask<double, W>::first(2);
    EXPECT_EQ(k.count(), 2);
    EXPECT_TRUE(k[0] && k[1]);
    EXPECT_FALSE(k[2] || k[3]);
    EXPECT_EQ((simd_mask<double, W>::all().count()), W);

    const simd<double, W> a(1.0);
    const simd<double, W> b(9.0);
    const auto sel = select(k, a, b);
    EXPECT_EQ(sel[0], 1.0);
    EXPECT_EQ(sel[1], 1.0);
    EXPECT_EQ(sel[2], 9.0);
    EXPECT_EQ(sel[3], 9.0);

    simd<double, W> x(2.0);
    where(k, x) += simd<double, W>(10.0);
    EXPECT_EQ(x[0], 12.0);
    EXPECT_EQ(x[1], 12.0);
    EXPECT_EQ(x[2], 2.0);
    EXPECT_EQ(x[3], 2.0);
    where(k, x) = simd<double, W>(-1.0);
    EXPECT_EQ(x[0], -1.0);
    EXPECT_EQ(x[3], 2.0);
}

TEST(SimdTraits, WidthAndDetection)
{
    EXPECT_TRUE((is_simd_v<simd<double, 4>>));
    EXPECT_FALSE(is_simd_v<double>);
    EXPECT_EQ((simd_width_v<simd<double, 8>>), 8);
    EXPECT_EQ(simd_width_v<double>, 1);
    EXPECT_GE(simd_preferred_width<double>, 1);
    EXPECT_GE(simd_native_bits, 64);
}

// ---------------------------------------------------------------------------
// View <-> pack glue on both layouts.
// ---------------------------------------------------------------------------

template <class Layout>
void roundtrip_lanes()
{
    constexpr int W = 4;
    View<double, 2, Layout> v("v", 3, 10);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 10; ++j) {
            v(i, j) = 100.0 * static_cast<double>(i) + static_cast<double>(j);
        }
    }
    // Full pack and tail pack, load and store back shifted by +1000.
    for (const auto& [j0, lanes] : {std::pair<std::size_t, int>{4, W},
                                    std::pair<std::size_t, int>{8, 2}}) {
        for (std::size_t i = 0; i < 3; ++i) {
            auto x = simd_load_lanes<W>(v, i, j0, lanes);
            for (int l = 0; l < lanes; ++l) {
                EXPECT_EQ(x[l], v(i, j0 + static_cast<std::size_t>(l)));
            }
            simd_store_lanes<W>(x + 1000.0, v, i, j0, lanes);
        }
    }
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 10; ++j) {
            const double base =
                    100.0 * static_cast<double>(i) + static_cast<double>(j);
            EXPECT_EQ(v(i, j), j >= 4 ? base + 1000.0 : base);
        }
    }
}

TEST(SimdView, LanesRoundTripLayoutRight)
{
    roundtrip_lanes<LayoutRight>(); // batch contiguous: vector moves
}

TEST(SimdView, LanesRoundTripLayoutLeft)
{
    roundtrip_lanes<LayoutLeft>(); // batch strided: gather/scatter
}

TEST(SimdView, ChunkStagingRoundTrip)
{
    constexpr int W = 4;
    const std::size_t n = 6;
    View2D<double> b("b", n, 7);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < 7; ++j) {
            b(i, j) = 10.0 * static_cast<double>(i) + static_cast<double>(j);
        }
    }
    std::vector<simd<double, W>> buf(n);
    // Tail chunk: columns [4, 7).
    simd_load_chunk<W>(b, 0, n, 4, 3, buf.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(buf[i][0], b(i, 4));
        EXPECT_EQ(buf[i][2], b(i, 6));
        EXPECT_EQ(buf[i][3], 0.0) << "dead lane must be zero-filled";
        buf[i] += 0.5;
    }
    simd_store_chunk<W>(b, 0, n, 4, 3, buf.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(b(i, 3), 10.0 * static_cast<double>(i) + 3.0);
        EXPECT_EQ(b(i, 4), 10.0 * static_cast<double>(i) + 4.5);
        EXPECT_EQ(b(i, 6), 10.0 * static_cast<double>(i) + 6.5);
    }
}

TEST(ForEachBatchSimd, CoversEveryIndexOnceWithCorrectTails)
{
    constexpr int W = 4;
    for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                    std::size_t{4}, std::size_t{5},
                                    std::size_t{17}}) {
        View1D<int> touched("touched", batch);
        for_each_batch_simd<W>("test_chunks", batch,
                               [=](const BatchChunk<W>& c) {
                                   EXPECT_EQ(c.full(), c.lanes == W);
                                   EXPECT_EQ(c.begin % W, 0u);
                                   for (int l = 0; l < c.lanes; ++l) {
                                       touched(c.begin
                                               + static_cast<std::size_t>(l))
                                               += 1;
                                   }
                               });
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_EQ(touched(j), 1) << "batch=" << batch << " j=" << j;
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end: SIMD builder and evaluator vs the scalar paths, at the batch
// sizes that stress chunking (1, W-1, W, W+1) and a large one.
// ---------------------------------------------------------------------------

double test_function(double x)
{
    return std::sin(2.0 * std::numbers::pi * x)
           + 0.5 * std::cos(4.0 * std::numbers::pi * x + 0.3);
}

View2D<double> sample_block(const BSplineBasis& basis, std::size_t batch)
{
    const auto pts = basis.interpolation_points();
    const std::size_t n = basis.nbasis();
    View2D<double> b("b", n, batch);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            b(i, j) = test_function(pts[i] + 0.01 * static_cast<double>(j));
        }
    }
    return b;
}

class SimdSolveParam
    : public ::testing::TestWithParam<std::tuple<int, bool, std::size_t>>
{
};

TEST_P(SimdSolveParam, BuilderMatchesScalarWithin4Ulp)
{
    const auto [degree, uniform, batch] = GetParam();
    const std::size_t ncells = 40;
    const auto basis =
            uniform ? BSplineBasis::uniform(degree, ncells, 0.0, 1.0)
                    : BSplineBasis::non_uniform(
                              degree, bsplines::stretched_breaks(ncells, 0.0,
                                                                 1.0, 0.4));
    const auto values = sample_block(basis, batch);

    // Scalar references per kernel chain: the gemv and spmv chains sum the
    // corner contributions in different orders, so each SIMD variant is
    // compared against the scalar version of *its own* chain (where the
    // lane-wise operations are identical and in identical order).
    SplineBuilder scalar_builder(basis, BuilderVersion::Fused);
    auto ref_gemv = clone(values);
    scalar_builder.build_inplace(ref_gemv);
    SplineBuilder spmv_builder(basis, BuilderVersion::FusedSpmv);
    auto ref_spmv = clone(values);
    spmv_builder.build_inplace(ref_spmv);

    const auto& s = scalar_builder.solver().device_data();
    for (const int w : {2, 4, 8}) {
        for (const bool use_spmv : {false, true}) {
            const auto& ref = use_spmv ? ref_spmv : ref_gemv;
            auto out = clone(values);
            switch (w) {
            case 2:
                core::schur_solve_batched_simd<2>(s, out, use_spmv);
                break;
            case 4:
                core::schur_solve_batched_simd<4>(s, out, use_spmv);
                break;
            default:
                core::schur_solve_batched_simd<8>(s, out, use_spmv);
                break;
            }
            for (std::size_t i = 0; i < basis.nbasis(); ++i) {
                for (std::size_t j = 0; j < batch; ++j) {
                    EXPECT_LE(ulp_distance(out(i, j), ref(i, j)), 4u)
                            << "W=" << w << " spmv=" << use_spmv << " i=" << i
                            << " j=" << j << " ref=" << ref(i, j)
                            << " out=" << out(i, j);
                }
            }
        }
    }
}

TEST_P(SimdSolveParam, EvaluatorMatchesScalarWithin4Ulp)
{
    const auto [degree, uniform, batch] = GetParam();
    const std::size_t ncells = 40;
    const auto basis =
            uniform ? BSplineBasis::uniform(degree, ncells, 0.0, 1.0)
                    : BSplineBasis::non_uniform(
                              degree, bsplines::stretched_breaks(ncells, 0.0,
                                                                 1.0, 0.4));
    SplineBuilder builder(basis);
    auto coeffs = sample_block(basis, batch);
    builder.build_inplace(coeffs);

    const std::size_t npts = 33;
    View1D<double> points("points", npts);
    for (std::size_t p = 0; p < npts; ++p) {
        points(p) = static_cast<double>(p) / static_cast<double>(npts) + 0.011;
    }

    SplineEvaluator scalar_eval(basis, core::EvaluatorVersion::Scalar);
    View2D<double> ref("ref", npts, batch);
    scalar_eval.evaluate_batched(points, coeffs, ref);

    SplineEvaluator simd_eval(basis, core::EvaluatorVersion::Simd);
    EXPECT_EQ(simd_eval.version(), core::EvaluatorVersion::Simd);
    View2D<double> out("out", npts, batch);
    simd_eval.evaluate_batched(points, coeffs, out);
    for (std::size_t p = 0; p < npts; ++p) {
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_LE(ulp_distance(out(p, j), ref(p, j)), 4u)
                    << "p=" << p << " j=" << j;
        }
    }

    // The explicit-width entry points must agree too, including widths
    // wider and narrower than the native one.
    for (const int w : {2, 4, 8}) {
        View2D<double> outw("outw", npts, batch);
        switch (w) {
        case 2:
            simd_eval.evaluate_batched_simd<2>(points, coeffs, outw);
            break;
        case 4:
            simd_eval.evaluate_batched_simd<4>(points, coeffs, outw);
            break;
        default:
            simd_eval.evaluate_batched_simd<8>(points, coeffs, outw);
            break;
        }
        for (std::size_t p = 0; p < npts; ++p) {
            for (std::size_t j = 0; j < batch; ++j) {
                EXPECT_LE(ulp_distance(outw(p, j), ref(p, j)), 4u)
                        << "W=" << w << " p=" << p << " j=" << j;
            }
        }
    }
}

// Batch sizes chosen around the widest pack (W = 8): 1, W-1, W, W+1, 1000.
INSTANTIATE_TEST_SUITE_P(
        Batches, SimdSolveParam,
        ::testing::Combine(::testing::Values(3, 4, 5), ::testing::Bool(),
                           ::testing::Values(std::size_t{1}, std::size_t{7},
                                             std::size_t{8}, std::size_t{9},
                                             std::size_t{1000})),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const bool u = std::get<1>(info.param);
            const std::size_t b = std::get<2>(info.param);
            return "deg" + std::to_string(d)
                   + (u ? "_uniform_batch" : "_nonuniform_batch")
                   + std::to_string(b);
        });

} // namespace
