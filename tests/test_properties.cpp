// Randomized (seeded, reproducible) cross-module property tests: each seed
// derives a full problem configuration and checks invariants that must hold
// for ANY valid configuration -- the property-based complement to the
// example-based unit tests.
#include "bsplines/collocation.hpp"
#include "bsplines/knots.hpp"
#include "core/schur_solver.hpp"
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "hostlapack/dense.hpp"
#include "hostlapack/getrf.hpp"
#include "iterative/bicgstab.hpp"
#include "iterative/ilu0.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;

struct Configuration {
    int degree;
    int grid_kind; // 0 uniform periodic, 1 stretched periodic, 2 clamped
    std::size_t ncells;
    std::size_t batch;
};

Configuration derive(unsigned seed)
{
    std::mt19937 rng(seed * 7919u + 13u);
    Configuration c;
    c.degree = 1 + static_cast<int>(rng() % 6); // 1..6
    c.grid_kind = static_cast<int>(rng() % 3);
    c.ncells = 8 + static_cast<std::size_t>(c.degree)
               + rng() % 90; // always > degree
    c.batch = 1 + rng() % 24;
    return c;
}

BSplineBasis make_basis(const Configuration& c)
{
    switch (c.grid_kind) {
    case 0:
        return BSplineBasis::uniform(c.degree, c.ncells, -1.0, 3.0);
    case 1:
        return BSplineBasis::non_uniform(
                c.degree, bsplines::stretched_breaks(c.ncells, -1.0, 3.0,
                                                     0.45));
    default:
        return BSplineBasis::clamped_uniform(c.degree, c.ncells, -1.0, 3.0);
    }
}

class PropertySeed : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PropertySeed, BuilderReproducesSamplesForAnyConfiguration)
{
    const auto c = derive(GetParam());
    const auto basis = make_basis(c);
    core::SplineBuilder builder(basis);
    const std::size_t n = basis.nbasis();
    View2D<double> b("b", n, c.batch);
    std::mt19937 rng(GetParam() + 1000u);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < c.batch; ++j) {
            b(i, j) = dist(rng);
        }
    }
    const auto values = clone(b);
    builder.build_inplace(b);
    core::SplineEvaluator eval(basis);
    const auto pts = basis.interpolation_points();
    for (std::size_t j = 0; j < c.batch; j += 3) {
        auto coeffs = subview(b, ALL, j);
        for (std::size_t i = 0; i < n; i += 2) {
            EXPECT_NEAR(eval(pts[i], coeffs), values(i, j), 1e-9)
                    << "seed " << GetParam() << " degree " << c.degree
                    << " grid " << c.grid_kind << " n " << n;
        }
    }
}

TEST_P(PropertySeed, SchurSolveMatchesDenseLuForAnyConfiguration)
{
    const auto c = derive(GetParam());
    const auto basis = make_basis(c);
    const auto a = bsplines::collocation_matrix(basis);
    const std::size_t n = a.extent(0);
    core::SchurSolver schur(a);
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hostlapack::getrf(lu, ipiv), 0);

    std::mt19937 rng(GetParam() + 2000u);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View1D<double> b("b", n);
    for (std::size_t i = 0; i < n; ++i) {
        b(i) = dist(rng);
    }
    auto x1 = clone(b);
    auto x2 = clone(b);
    schur.solve_host(x1);
    hostlapack::getrs(lu, ipiv, x2);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x1(i), x2(i), 1e-8)
                << "seed " << GetParam() << " kind "
                << to_string(schur.kind());
    }
}

TEST_P(PropertySeed, BuildIsLinearInTheData)
{
    const auto c = derive(GetParam());
    const auto basis = make_basis(c);
    core::SplineBuilder builder(basis);
    const std::size_t n = basis.nbasis();
    std::mt19937 rng(GetParam() + 3000u);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> f("f", n, 1);
    View2D<double> g("g", n, 1);
    View2D<double> combo("combo", n, 1);
    const double alpha = dist(rng);
    const double beta = dist(rng);
    for (std::size_t i = 0; i < n; ++i) {
        f(i, 0) = dist(rng);
        g(i, 0) = dist(rng);
        combo(i, 0) = alpha * f(i, 0) + beta * g(i, 0);
    }
    builder.build_inplace(f);
    builder.build_inplace(g);
    builder.build_inplace(combo);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(combo(i, 0), alpha * f(i, 0) + beta * g(i, 0), 1e-10);
    }
}

TEST_P(PropertySeed, PeriodicShiftInvarianceOnUniformGrids)
{
    // Rolling the input values by one grid cell must roll the coefficients
    // by one (periodic uniform grids are translation invariant).
    auto c = derive(GetParam());
    c.grid_kind = 0;
    const auto basis = make_basis(c);
    core::SplineBuilder builder(basis);
    const std::size_t n = basis.nbasis();
    std::mt19937 rng(GetParam() + 4000u);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> b("b", n, 1);
    View2D<double> rolled("rolled", n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        b(i, 0) = dist(rng);
    }
    for (std::size_t i = 0; i < n; ++i) {
        rolled((i + 1) % n, 0) = b(i, 0);
    }
    builder.build_inplace(b);
    builder.build_inplace(rolled);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(rolled((i + 1) % n, 0), b(i, 0), 1e-9);
    }
}

TEST_P(PropertySeed, SparseRoundTripsAndProductsAgree)
{
    std::mt19937 rng(GetParam() + 5000u);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t rows = 5 + rng() % 40;
    const std::size_t cols = 5 + rng() % 40;
    View2D<double> dense("d", rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            if (rng() % 4 == 0) {
                dense(i, j) = dist(rng);
            }
        }
    }
    const auto coo = sparse::Coo::from_dense(dense, 0.0);
    const auto csr = sparse::Csr::from_dense(dense, 0.0);
    EXPECT_EQ(coo.nnz(), csr.nnz());
    const auto back1 = coo.to_dense();
    const auto back2 = csr.to_dense();
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            EXPECT_DOUBLE_EQ(back1(i, j), dense(i, j));
            EXPECT_DOUBLE_EQ(back2(i, j), dense(i, j));
        }
    }
    // y_csr = A x must equal 100 - (100 - A x) via coo.spmv_sub.
    View1D<double> x("x", cols);
    for (std::size_t j = 0; j < cols; ++j) {
        x(j) = dist(rng);
    }
    View1D<double> y1("y1", rows);
    View1D<double> y2("y2", rows);
    csr.apply(x, y1);
    for (std::size_t i = 0; i < rows; ++i) {
        y2(i) = 100.0;
    }
    coo.spmv_sub(x, y2);
    for (std::size_t i = 0; i < rows; ++i) {
        EXPECT_NEAR(y2(i), 100.0 - y1(i), 1e-12);
    }
}

TEST_P(PropertySeed, IterativeWithIlu0MatchesDenseSolve)
{
    std::mt19937 rng(GetParam() + 6000u);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    const std::size_t n = 20 + rng() % 60;
    const std::size_t band = 1 + rng() % 3;
    View2D<double> dense("d", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i > band ? i - band : 0;
        const std::size_t hi = std::min(n - 1, i + band);
        for (std::size_t j = lo; j <= hi; ++j) {
            dense(i, j) = dist(rng);
        }
        dense(i, i) += 3.0;
    }
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    iterative::Ilu0 precond(a);
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
        rhs[i] = dist(rng);
    }
    std::vector<double> x(n, 0.0);
    iterative::Config cfg;
    cfg.tolerance = 1e-13;
    const auto r = iterative::bicgstab_solve(a, &precond, rhs, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 3u); // ILU(0) is exact on pure bands

    auto lu = clone(dense);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hostlapack::getrf(lu, ipiv), 0);
    View1D<double> ref("ref", n);
    for (std::size_t i = 0; i < n; ++i) {
        ref(i) = rhs[i];
    }
    hostlapack::getrs(lu, ipiv, ref);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], ref(i), 1e-9);
    }
}

TEST_P(PropertySeed, EvaluatorIntegrateMatchesFineRiemannSum)
{
    const auto c = derive(GetParam());
    const auto basis = make_basis(c);
    core::SplineBuilder builder(basis);
    const std::size_t n = basis.nbasis();
    std::mt19937 rng(GetParam() + 7000u);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> b("b", n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        b(i, 0) = dist(rng);
    }
    builder.build_inplace(b);
    core::SplineEvaluator eval(basis);
    auto coeffs = subview(b, ALL, std::size_t{0});
    const double exact = eval.integrate(coeffs);
    // Fine midpoint Riemann sum of the spline itself.
    const std::size_t m = 20000;
    double sum = 0.0;
    const double h = basis.length() / static_cast<double>(m);
    for (std::size_t s = 0; s < m; ++s) {
        const double x = basis.xmin() + (static_cast<double>(s) + 0.5) * h;
        sum += eval(x, coeffs) * h;
    }
    EXPECT_NEAR(exact, sum, 1e-5 * std::max(1.0, std::abs(exact)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed, ::testing::Range(0u, 12u));

} // namespace
