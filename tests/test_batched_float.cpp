// Single-precision coverage of the batched-serial Internal kernels: the
// pointer-level implementations are templated on the value type (like
// KokkosBatched), so float builds must work and deliver float-level
// accuracy. GYSELA-class codes use mixed precision for diagnostics and
// preconditioning, which these instantiations support.
#include "batched/batched.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace pspl::batched;

TEST(FloatKernels, PttrsInternalSolvesFloatSystem)
{
    const int n = 40;
    // SPD tridiagonal [.., -1, 4, -1, ..] factored in float.
    std::vector<float> d(n, 4.0f);
    std::vector<float> e(n - 1, -1.0f);
    // LDL^T factorization (same recurrence as hostlapack::pttrf).
    for (int i = 0; i + 1 < n; ++i) {
        const float ei = e[i] / d[i];
        d[i + 1] -= ei * e[i];
        e[i] = ei;
    }
    std::vector<float> b(n);
    std::vector<float> rhs(n);
    for (int i = 0; i < n; ++i) {
        rhs[i] = b[i] = std::sin(0.3f * static_cast<float>(i));
    }
    SerialPttrsInternal::invoke(n, d.data(), 1, e.data(), 1, b.data(), 1);
    // Residual of the original system in float precision.
    for (int i = 0; i < n; ++i) {
        float acc = 4.0f * b[i];
        if (i > 0) {
            acc += -1.0f * b[i - 1];
        }
        if (i + 1 < n) {
            acc += -1.0f * b[i + 1];
        }
        EXPECT_NEAR(acc, rhs[i], 1e-5f) << i;
    }
}

TEST(FloatKernels, GemvInternalFloat)
{
    const int m = 3;
    const int n = 4;
    std::vector<float> a(m * n);
    for (int i = 0; i < m * n; ++i) {
        a[static_cast<std::size_t>(i)] = 0.25f * static_cast<float>(i + 1);
    }
    std::vector<float> x(n, 1.0f);
    std::vector<float> y(m, 2.0f);
    SerialGemvInternal::invoke(m, n, -1.0f, a.data(), n, 1, x.data(), 1, 1.0f,
                               y.data(), 1);
    // Row sums: (1+2+3+4)*0.25 = 2.5; (5+..+8)*0.25 = 6.5; (9..12)*0.25=10.5
    EXPECT_FLOAT_EQ(y[0], 2.0f - 2.5f);
    EXPECT_FLOAT_EQ(y[1], 2.0f - 6.5f);
    EXPECT_FLOAT_EQ(y[2], 2.0f - 10.5f);
}

TEST(FloatKernels, GetrsInternalFloat)
{
    // 2x2 system with a pre-pivoted LU: A = [[4, 1], [2, 3]],
    // LU (no pivot needed): L = [[1,0],[0.5,1]], U = [[4,1],[0,2.5]].
    const float lu[4] = {4.0f, 1.0f, 0.5f, 2.5f};
    const int ipiv[2] = {0, 1};
    float b[2] = {9.0f, 11.0f}; // solution x = (1, 5)? check: 4+5=9; 2+15=17
    // pick b for x=(2,1): 4*2+1=9, 2*2+3=7.
    b[0] = 9.0f;
    b[1] = 7.0f;
    SerialGetrsInternal::invoke(2, lu, 2, 1, ipiv, 1, b, 1);
    EXPECT_NEAR(b[0], 2.0f, 1e-6f);
    EXPECT_NEAR(b[1], 1.0f, 1e-6f);
}

TEST(FloatKernels, StridedAccessWithNonUnitStride)
{
    // The kernels must honour arbitrary strides (the batched layout uses
    // stride == batch); exercise the double path with stride 3.
    const int n = 8;
    std::vector<double> d(n, 4.0);
    std::vector<double> e(n - 1, -1.0);
    for (int i = 0; i + 1 < n; ++i) {
        const double ei = e[i] / d[i];
        d[i + 1] -= ei * e[i];
        e[i] = ei;
    }
    std::vector<double> b(3 * n, -99.0);
    std::vector<double> rhs(n);
    for (int i = 0; i < n; ++i) {
        rhs[i] = std::cos(0.5 * i);
        b[static_cast<std::size_t>(3 * i)] = rhs[i];
    }
    SerialPttrsInternal::invoke(n, d.data(), 1, e.data(), 1, b.data(), 3);
    for (int i = 0; i < n; ++i) {
        double acc = 4.0 * b[static_cast<std::size_t>(3 * i)];
        if (i > 0) {
            acc -= b[static_cast<std::size_t>(3 * (i - 1))];
        }
        if (i + 1 < n) {
            acc -= b[static_cast<std::size_t>(3 * (i + 1))];
        }
        EXPECT_NEAR(acc, rhs[i], 1e-12);
    }
    // Untouched gaps stay untouched.
    EXPECT_EQ(b[1], -99.0);
    EXPECT_EQ(b[2], -99.0);
}

} // namespace
