// Tests for the hierarchical TeamPolicy layer: league/team coverage, nested
// ranges, reductions, and a team-tiled batched spline solve that must agree
// with the flat RangePolicy path.
#include "core/spline_builder.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"
#include "parallel/team.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using namespace pspl;

template <class Exec>
class TeamTyped : public ::testing::Test
{
};

#if defined(PSPL_ENABLE_OPENMP)
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::OpenMP, pspl::Threads>;
#else
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::Threads>;
#endif
TYPED_TEST_SUITE(TeamTyped, ExecSpaces);

TYPED_TEST(TeamTyped, EveryLeagueMemberPairRunsOnce)
{
    const std::size_t league = 13;
    const int team = 4;
    View2D<int> hits("hits", league, static_cast<std::size_t>(team));
    parallel_for("team_cover", TeamPolicy<TypeParam>(league, team),
                 [=](const TeamMember& m) {
                     hits(m.league_rank(),
                          static_cast<std::size_t>(m.team_rank())) += 1;
                 });
    for (std::size_t l = 0; l < league; ++l) {
        for (int t = 0; t < team; ++t) {
            EXPECT_EQ(hits(l, static_cast<std::size_t>(t)), 1);
        }
    }
}

TYPED_TEST(TeamTyped, MemberMetadataIsConsistent)
{
    const std::size_t league = 5;
    const int team = 3;
    View1D<int> ok("ok", league);
    parallel_for("team_meta", TeamPolicy<TypeParam>(league, team),
                 [=](const TeamMember& m) {
                     const bool good = m.team_size() == team
                                       && m.league_size() == league
                                       && m.team_rank() >= 0
                                       && m.team_rank() < team
                                       && m.league_rank() < league;
                     if (good) {
                         ok(m.league_rank()) += 1;
                     }
                 });
    for (std::size_t l = 0; l < league; ++l) {
        EXPECT_EQ(ok(l), team);
    }
}

TYPED_TEST(TeamTyped, TeamThreadRangePartitionsExactly)
{
    // Across the whole team, [0, n) is covered exactly once.
    const std::size_t league = 3;
    const int team = 4;
    const std::size_t n = 26; // not divisible by team size
    View2D<int> hits("hits", league, n);
    parallel_for("ttr", TeamPolicy<TypeParam>(league, team),
                 [=](const TeamMember& m) {
                     team_thread_range(m, n, [&](std::size_t i) {
                         hits(m.league_rank(), i) += 1;
                     });
                 });
    for (std::size_t l = 0; l < league; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits(l, i), 1) << l << " " << i;
        }
    }
}

TYPED_TEST(TeamTyped, ThreadVectorRangeRunsFullyPerMember)
{
    const std::size_t league = 2;
    const int team = 2;
    const std::size_t n = 9;
    View2D<int> hits("hits", league, n);
    parallel_for("tvr", TeamPolicy<TypeParam>(league, team),
                 [=](const TeamMember& m) {
                     if (m.team_rank() == 0) { // one member per team writes
                         thread_vector_range(m, n, [&](std::size_t i) {
                             hits(m.league_rank(), i) += 1;
                         });
                     }
                 });
    for (std::size_t l = 0; l < league; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits(l, i), 1);
        }
    }
}

TYPED_TEST(TeamTyped, TeamReduceGivesTeamWideTotalToEveryMember)
{
    const std::size_t league = 4;
    const int team = 3;
    const std::size_t n = 100;
    View2D<double> sums("sums", league, static_cast<std::size_t>(team));
    parallel_for("treduce", TeamPolicy<TypeParam>(league, team),
                 [=](const TeamMember& m) {
                     const double s = team_thread_reduce_sum(
                             m, n,
                             [&](std::size_t i) {
                                 return static_cast<double>(i);
                             });
                     sums(m.league_rank(),
                          static_cast<std::size_t>(m.team_rank())) = s;
                 });
    const double expect = static_cast<double>(n) * (n - 1) / 2.0;
    for (std::size_t l = 0; l < league; ++l) {
        for (int t = 0; t < team; ++t) {
            EXPECT_DOUBLE_EQ(sums(l, static_cast<std::size_t>(t)), expect);
        }
    }
}

TEST(TeamPolicy, RejectsZeroTeamSize)
{
    EXPECT_DEATH(TeamPolicy<Serial>(4, 0), "team_size");
}

TEST(TeamPolicy, TeamTiledSplineSolveMatchesFlatPath)
{
    // Tile the batch across a league of teams: each team owns a tile of
    // columns, members split the tile. Must be bit-identical to the flat
    // RangePolicy builder.
    const auto basis = bsplines::BSplineBasis::uniform(3, 48, 0.0, 1.0);
    core::SplineBuilder builder(basis);
    const std::size_t batch = 37;
    View2D<double> b_flat("bf", 48, batch);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < 48; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            b_flat(i, j) = std::sin(2.0 * std::numbers::pi * pts[i]
                                    + 0.1 * static_cast<double>(j));
        }
    }
    auto b_team = clone(b_flat);
    builder.build_inplace(b_flat);

    const auto s = builder.solver().device_data();
    const std::size_t tile = 8;
    const std::size_t league = (batch + tile - 1) / tile;
    parallel_for("team_solve", TeamPolicy<DefaultExecutionSpace>(league, 2),
                 [=](const TeamMember& m) {
                     const std::size_t begin = m.league_rank() * tile;
                     const std::size_t end = std::min(begin + tile, batch);
                     team_thread_range(m, end - begin, [&](std::size_t t) {
                         const std::size_t col = begin + t;
                         auto full = subview(b_team, ALL, col);
                         core::SchurSolver::solve_one(s, full);
                     });
                 });
    for (std::size_t i = 0; i < 48; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_DOUBLE_EQ(b_flat(i, j), b_team(i, j));
        }
    }
}

} // namespace
