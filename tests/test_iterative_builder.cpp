// Tests for the iterative (mini-Ginkgo) spline builder: agreement with the
// direct path and the Table IV iteration-count trends.
#include "core/iterative_spline_builder.hpp"
#include "core/spline_builder.hpp"
#include "bsplines/knots.hpp"
#include "parallel/deep_copy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using core::IterativeSplineBuilder;
using core::SplineBuilder;
using iterative::IterativeKind;

/// Spectrally rich samples: a pure sine would be a near-eigenvector of the
/// circulant-like collocation matrix and make iteration counts degenerate.
View2D<double> sample_block(const BSplineBasis& basis, std::size_t batch)
{
    const auto pts = basis.interpolation_points();
    const std::size_t n = basis.nbasis();
    View2D<double> b("b", n, batch);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            b(i, j) = std::sin(2.0 * std::numbers::pi * pts[i]
                               + 0.05 * static_cast<double>(j))
                      + 0.4 * std::cos(29.0 * pts[i])
                      + 0.2 * std::sin(157.0 * pts[i] + static_cast<double>(j));
        }
    }
    return b;
}

class IterBuilderParam
    : public ::testing::TestWithParam<std::tuple<int, bool, IterativeKind>>
{
};

TEST_P(IterBuilderParam, AgreesWithDirectBuilder)
{
    const auto [degree, uniform, kind] = GetParam();
    const std::size_t n = 48;
    const auto basis =
            uniform ? BSplineBasis::uniform(degree, n, 0.0, 1.0)
                    : BSplineBasis::non_uniform(
                              degree,
                              bsplines::stretched_breaks(n, 0.0, 1.0, 0.4));
    const std::size_t batch = 5;
    const auto values = sample_block(basis, batch);

    SplineBuilder direct(basis);
    auto ref = clone(values);
    direct.build_inplace(ref);

    IterativeSplineBuilder::Options opts;
    opts.kind = kind;
    opts.config.tolerance = 1e-14;
    opts.max_block_size = 8;
    IterativeSplineBuilder iter(basis, opts);
    auto out = clone(values);
    const auto stats = iter.build_inplace(out);
    EXPECT_TRUE(stats.all_converged);
    EXPECT_EQ(stats.columns, batch);

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_NEAR(out(i, j), ref(i, j), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
        Kinds, IterBuilderParam,
        ::testing::Combine(::testing::Values(3, 4, 5), ::testing::Bool(),
                           ::testing::Values(IterativeKind::BiCGStab,
                                             IterativeKind::GMRES)),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const bool u = std::get<1>(info.param);
            const auto k = std::get<2>(info.param);
            return std::string("deg") + std::to_string(d)
                   + (u ? "_uniform_" : "_nonuniform_") + to_string(k);
        });

TEST(IterativeBuilder, CgWorksOnSymmetricUniformMatrix)
{
    const auto basis = BSplineBasis::uniform(3, 40, 0.0, 1.0);
    IterativeSplineBuilder::Options opts;
    opts.kind = IterativeKind::CG;
    opts.config.tolerance = 1e-13;
    IterativeSplineBuilder iter(basis, opts);
    auto b = sample_block(basis, 3);
    const auto stats = iter.build_inplace(b);
    EXPECT_TRUE(stats.all_converged);
}

TEST(IterativeBuilder, IterationCountGrowsWithDegree)
{
    // Table IV: iterations increase with spline degree (and non-uniformity)
    // because the matrices become less diagonally dominant.
    auto iterations_for = [](int degree, bool uniform) {
        const std::size_t n = 64;
        const auto basis =
                uniform ? BSplineBasis::uniform(degree, n, 0.0, 1.0)
                        : BSplineBasis::non_uniform(
                                  degree,
                                  bsplines::stretched_breaks(n, 0.0, 1.0,
                                                             0.5));
        IterativeSplineBuilder::Options opts;
        opts.kind = IterativeKind::BiCGStab;
        opts.config.tolerance = 1e-14;
        opts.max_block_size = 8;
        IterativeSplineBuilder iter(basis, opts);
        auto b = sample_block(basis, 2);
        return iter.build_inplace(b).max_iterations;
    };

    const auto u3 = iterations_for(3, true);
    const auto u5 = iterations_for(5, true);
    const auto n3 = iterations_for(3, false);
    const auto n5 = iterations_for(5, false);
    EXPECT_LE(u3, u5);
    EXPECT_LE(n3, n5);
    EXPECT_LE(u3, n3); // non-uniform costs at least as much as uniform
}

TEST(IterativeBuilder, LargerJacobiBlocksDoNotHurtConvergence)
{
    // The paper tunes max_block_size in [1, 32]; bigger blocks capture more
    // of the band and should never need more iterations than block size 1
    // (plain Jacobi) on these well-conditioned matrices.
    auto iterations_for = [](std::size_t block_size) {
        const auto basis = BSplineBasis::uniform(5, 64, 0.0, 1.0);
        IterativeSplineBuilder::Options opts;
        opts.kind = IterativeKind::BiCGStab;
        opts.config.tolerance = 1e-13;
        opts.max_block_size = block_size;
        IterativeSplineBuilder iter(basis, opts);
        auto b = sample_block(basis, 2);
        const auto stats = iter.build_inplace(b);
        EXPECT_TRUE(stats.all_converged);
        return stats.max_iterations;
    };
    EXPECT_LE(iterations_for(16), iterations_for(1));
}

TEST(IterativeBuilder, RejectsWrongRhsExtent)
{
    const auto basis = BSplineBasis::uniform(3, 16, 0.0, 1.0);
    IterativeSplineBuilder iter(basis);
    View2D<double> b("b", 10, 2);
    EXPECT_DEATH(iter.build_inplace(b), "nbasis");
}

} // namespace
