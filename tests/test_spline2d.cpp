// Tests for 2-D tensor-product splines: interpolation property,
// separability, mixed boundaries/degrees, convergence, derivatives and
// quadrature.
#include "core/spline_builder.hpp"
#include "advection/transpose.hpp"
#include "core/spline_builder_2d.hpp"
#include "core/spline_evaluator.hpp"
#include "core/spline_evaluator_2d.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <numbers>
#include <tuple>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using core::SplineBuilder2D;
using core::SplineEvaluator2D;

constexpr double two_pi = 2.0 * std::numbers::pi;

double f2(double x, double y)
{
    return std::sin(two_pi * x) * std::cos(two_pi * y)
           + 0.3 * std::cos(two_pi * (x + 2.0 * y));
}

View2D<double> sample_2d(const BSplineBasis& bx, const BSplineBasis& by,
                         double (*f)(double, double))
{
    const auto px = bx.interpolation_points();
    const auto py = by.interpolation_points();
    View2D<double> v("v", bx.nbasis(), by.nbasis());
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            v(i, j) = f(px[i], py[j]);
        }
    }
    return v;
}

class Spline2DParam
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{
protected:
    BSplineBasis make_x(std::size_t n) const
    {
        return BSplineBasis::uniform(std::get<0>(GetParam()), n, 0.0, 1.0);
    }
    BSplineBasis make_y(std::size_t n) const
    {
        const int dy = std::get<1>(GetParam());
        if (std::get<2>(GetParam())) {
            return BSplineBasis::clamped_uniform(dy, n, 0.0, 1.0);
        }
        return BSplineBasis::uniform(dy, n, 0.0, 1.0);
    }
};

TEST_P(Spline2DParam, InterpolationPropertyHolds)
{
    const auto bx = make_x(24);
    const auto by = make_y(20);
    SplineBuilder2D builder(bx, by);
    auto v = sample_2d(bx, by, f2);
    const auto values = clone(v);
    builder.build_inplace(v);

    SplineEvaluator2D eval(bx, by);
    const auto px = bx.interpolation_points();
    const auto py = by.interpolation_points();
    for (std::size_t i = 0; i < bx.nbasis(); i += 3) {
        for (std::size_t j = 0; j < by.nbasis(); j += 2) {
            EXPECT_NEAR(eval(px[i], py[j], v), values(i, j), 1e-10)
                    << "i=" << i << " j=" << j;
        }
    }
}

TEST_P(Spline2DParam, ConstantReproduction)
{
    const auto bx = make_x(16);
    const auto by = make_y(12);
    SplineBuilder2D builder(bx, by);
    View2D<double> v("v", bx.nbasis(), by.nbasis());
    deep_copy(v, 4.25);
    builder.build_inplace(v);
    SplineEvaluator2D eval(bx, by);
    for (int s = 0; s < 25; ++s) {
        const double x = 0.04 * static_cast<double>(s) + 0.001;
        const double y = 1.0 - x;
        EXPECT_NEAR(eval(x, y, v), 4.25, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
        Mixes, Spline2DParam,
        ::testing::Combine(::testing::Values(3, 5), ::testing::Values(3, 4),
                           ::testing::Bool()),
        [](const auto& info) {
            return "dx" + std::to_string(std::get<0>(info.param)) + "_dy"
                   + std::to_string(std::get<1>(info.param))
                   + (std::get<2>(info.param) ? "_clampedY" : "_periodicY");
        });

TEST(Spline2D, SeparableFunctionMatchesProductOf1D)
{
    // For f(x, y) = g(x) h(y), the tensor-product coefficients are the
    // outer product of the 1-D coefficients.
    const auto bx = BSplineBasis::uniform(3, 20, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(4, 16, 0.0, 1.0);
    auto g = [](double x) { return std::sin(two_pi * x) + 2.0; };
    auto h = [](double y) { return std::cos(two_pi * y) - 0.5; };

    core::SplineBuilder b1x(bx);
    core::SplineBuilder b1y(by);
    View2D<double> cx("cx", bx.nbasis(), 1);
    View2D<double> cy("cy", by.nbasis(), 1);
    const auto px = bx.interpolation_points();
    const auto py = by.interpolation_points();
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        cx(i, 0) = g(px[i]);
    }
    for (std::size_t j = 0; j < by.nbasis(); ++j) {
        cy(j, 0) = h(py[j]);
    }
    b1x.build_inplace(cx);
    b1y.build_inplace(cy);

    SplineBuilder2D b2(bx, by);
    View2D<double> v("v", bx.nbasis(), by.nbasis());
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            v(i, j) = g(px[i]) * h(py[j]);
        }
    }
    b2.build_inplace(v);

    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            EXPECT_NEAR(v(i, j), cx(i, 0) * cy(j, 0), 1e-11);
        }
    }
}

TEST(Spline2D, ConvergesAtMinDegreeOrder)
{
    auto max_err = [&](std::size_t n) {
        const auto bx = BSplineBasis::uniform(3, n, 0.0, 1.0);
        const auto by = BSplineBasis::uniform(3, n, 0.0, 1.0);
        SplineBuilder2D builder(bx, by);
        auto v = sample_2d(bx, by, f2);
        builder.build_inplace(v);
        SplineEvaluator2D eval(bx, by);
        double err = 0.0;
        for (int a = 0; a < 40; ++a) {
            for (int b = 0; b < 40; ++b) {
                const double x = (static_cast<double>(a) + 0.37) / 40.0;
                const double y = (static_cast<double>(b) + 0.61) / 40.0;
                err = std::max(err, std::abs(eval(x, y, v) - f2(x, y)));
            }
        }
        return err;
    };
    const double e1 = max_err(24);
    const double e2 = max_err(48);
    EXPECT_GT(e1 / e2, 16.0 / 3.0) << "e1=" << e1 << " e2=" << e2;
}

TEST(Spline2D, PartialDerivativesMatchAnalytic)
{
    const auto bx = BSplineBasis::uniform(5, 48, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(5, 48, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    auto v = sample_2d(bx, by, +[](double x, double y) {
        return std::sin(two_pi * x) * std::cos(two_pi * y);
    });
    builder.build_inplace(v);
    SplineEvaluator2D eval(bx, by);
    for (int s = 0; s < 30; ++s) {
        const double x = (static_cast<double>(s) + 0.5) / 30.0;
        const double y = 1.0 - x;
        EXPECT_NEAR(eval.deriv_x(x, y, v),
                    two_pi * std::cos(two_pi * x) * std::cos(two_pi * y),
                    1e-4);
        EXPECT_NEAR(eval.deriv_y(x, y, v),
                    -two_pi * std::sin(two_pi * x) * std::sin(two_pi * y),
                    1e-4);
    }
}

TEST(Spline2D, IntegrateIsExactForConstant)
{
    const auto bx = BSplineBasis::uniform(3, 10, 0.0, 2.0);
    const auto by = BSplineBasis::clamped_uniform(4, 8, -1.0, 1.0);
    SplineBuilder2D builder(bx, by);
    View2D<double> v("v", bx.nbasis(), by.nbasis());
    deep_copy(v, 1.5);
    builder.build_inplace(v);
    SplineEvaluator2D eval(bx, by);
    // 1.5 * area(2 x 2) = 6.
    EXPECT_NEAR(eval.integrate(v), 6.0, 1e-11);
}

TEST(Spline2D, ExecutionSpacesAgree)
{
    const auto bx = BSplineBasis::uniform(3, 32, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(3, 24, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    auto v1 = sample_2d(bx, by, f2);
    auto v2 = clone(v1);
    builder.build_inplace<pspl::Serial>(v1);
#if defined(PSPL_ENABLE_OPENMP)
    builder.build_inplace<pspl::OpenMP>(v2);
#else
    builder.build_inplace<pspl::Serial>(v2);
#endif
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            EXPECT_DOUBLE_EQ(v1(i, j), v2(i, j));
        }
    }
}

TEST(Spline2D, BatchedRank3MatchesPlaneByPlane)
{
    const auto bx = BSplineBasis::uniform(3, 20, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(4, 16, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    const std::size_t batch = 5;
    View3D<double> block("block", bx.nbasis(), by.nbasis(), batch);
    const auto px = bx.interpolation_points();
    const auto py = by.interpolation_points();
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            for (std::size_t k = 0; k < batch; ++k) {
                block(i, j, k) = std::sin(two_pi * px[i]
                                          + 0.3 * static_cast<double>(k))
                                 * std::cos(two_pi * py[j]);
            }
        }
    }
    // Reference: plane k = 2 solved alone.
    View2D<double> plane("plane", bx.nbasis(), by.nbasis());
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            plane(i, j) = block(i, j, 2);
        }
    }
    builder.build_inplace(plane);
    builder.build_inplace(block);
    for (std::size_t i = 0; i < bx.nbasis(); ++i) {
        for (std::size_t j = 0; j < by.nbasis(); ++j) {
            EXPECT_NEAR(block(i, j, 2), plane(i, j), 1e-13);
        }
    }
}

TEST(Transpose01, PermutesLeadingDims)
{
    View3D<double> in("in", 3, 4, 2);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            for (std::size_t k = 0; k < 2; ++k) {
                in(i, j, k) = static_cast<double>(100 * i + 10 * j + k);
            }
        }
    }
    View3D<double> out("out", 4, 3, 2);
    advection::transpose_01("t01", in, out);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            for (std::size_t k = 0; k < 2; ++k) {
                EXPECT_EQ(out(j, i, k), in(i, j, k));
            }
        }
    }
}

// Boundary handling of the 2-D evaluator across degrees 2-5: feet exactly
// on the last knot, feet clamped from outside the domain (clamped bases)
// and feet wrapped around the period (periodic bases). These are exactly
// the feet a semi-Lagrangian step produces near the domain edges.
class Spline2DBoundary : public ::testing::TestWithParam<int>
{
protected:
    int degree() const { return GetParam(); }
};

TEST_P(Spline2DBoundary, FootExactlyOnLastKnot)
{
    // Periodic x, clamped y: the last y knot is a genuine domain edge. An
    // evaluation exactly at it must land in a valid cell (no past-the-end
    // support window) and reproduce the interpolated sample there.
    const auto bx = BSplineBasis::uniform(degree(), 24, 0.0, 1.0);
    const auto by = BSplineBasis::clamped_uniform(degree(), 20, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    auto v = sample_2d(bx, by, f2);
    const auto values = clone(v);
    builder.build_inplace(v);

    SplineEvaluator2D eval(bx, by);
    const auto px = bx.interpolation_points();
    const auto py = by.interpolation_points();
    ASSERT_DOUBLE_EQ(py.back(), 1.0);
    for (std::size_t i = 0; i < bx.nbasis(); i += 3) {
        const double s = eval(px[i], 1.0, v);
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_NEAR(s, values(i, by.nbasis() - 1), 1e-10) << "i=" << i;
    }
    // Periodic direction: x = 1.0 is the wrap point, identified with 0.0.
    for (std::size_t j = 0; j < by.nbasis(); j += 2) {
        EXPECT_NEAR(eval(1.0, py[j], v), eval(0.0, py[j], v), 1e-12)
                << "j=" << j;
    }
}

TEST_P(Spline2DBoundary, ClampedFeetOutsideDomainClampToEdge)
{
    const auto bx = BSplineBasis::clamped_uniform(degree(), 18, 0.0, 1.0);
    const auto by = BSplineBasis::clamped_uniform(degree(), 22, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    auto v = sample_2d(bx, by, f2);
    builder.build_inplace(v);

    SplineEvaluator2D eval(bx, by);
    // A foot outside a clamped domain clamps to the edge: the same basis
    // arithmetic runs at the clamped coordinate, so the values agree
    // bitwise, not just approximately.
    for (const double y : {0.15, 0.5, 0.85}) {
        EXPECT_EQ(eval(-0.3, y, v), eval(0.0, y, v));
        EXPECT_EQ(eval(1.7, y, v), eval(1.0, y, v));
    }
    for (const double x : {0.2, 0.65}) {
        EXPECT_EQ(eval(x, -2.0, v), eval(x, 0.0, v));
        EXPECT_EQ(eval(x, 1.0 + 1e-9, v), eval(x, 1.0, v));
    }
    EXPECT_EQ(eval(-1.0, 2.0, v), eval(0.0, 1.0, v));
}

TEST_P(Spline2DBoundary, PeriodicFeetWrapAroundThePeriod)
{
    const auto bx = BSplineBasis::uniform(degree(), 26, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(degree(), 30, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    auto v = sample_2d(bx, by, f2);
    builder.build_inplace(v);

    SplineEvaluator2D eval(bx, by);
    for (const double x : {0.03, 0.5, 0.97}) {
        for (const double y : {0.02, 0.48, 0.99}) {
            const double ref = eval(x, y, v);
            EXPECT_NEAR(eval(x + 1.0, y, v), ref, 1e-12);
            EXPECT_NEAR(eval(x - 1.0, y, v), ref, 1e-12);
            EXPECT_NEAR(eval(x, y + 2.0, v), ref, 1e-12);
            EXPECT_NEAR(eval(x + 3.0, y - 1.0, v), ref, 1e-12);
        }
    }
}

TEST_P(Spline2DBoundary, EvaluateManyMatchesPointwiseAtBoundaryFeet)
{
    // evaluate_many is the strip entry point the fused advection driver
    // consumes; at boundary feet it must agree bitwise with the scalar
    // operator() since it runs the same per-point arithmetic.
    const auto bx = BSplineBasis::uniform(degree(), 24, 0.0, 1.0);
    const auto by = BSplineBasis::clamped_uniform(degree(), 20, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    auto v = sample_2d(bx, by, f2);
    builder.build_inplace(v);

    SplineEvaluator2D eval(bx, by);
    const double xs_raw[] = {0.0, 1.0, 1.25, -0.5, 0.999999, 0.37};
    const double ys_raw[] = {1.0, 0.0, -0.2, 1.6, 1.0, 0.42};
    constexpr std::size_t npts = std::size(xs_raw);
    View1D<double> xs("xs", npts);
    View1D<double> ys("ys", npts);
    for (std::size_t k = 0; k < npts; ++k) {
        xs(k) = xs_raw[k];
        ys(k) = ys_raw[k];
    }
    double out[npts];
    eval.evaluate_many(xs, ys, v, out);
    for (std::size_t k = 0; k < npts; ++k) {
        EXPECT_EQ(out[k], eval(xs(k), ys(k), v)) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, Spline2DBoundary,
                         ::testing::Values(2, 3, 4, 5),
                         [](const auto& info) {
                             return "d" + std::to_string(info.param);
                         });

TEST(Spline2D, RejectsWrongShape)
{
    const auto bx = BSplineBasis::uniform(3, 16, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(3, 12, 0.0, 1.0);
    SplineBuilder2D builder(bx, by);
    View2D<double> bad("bad", 12, 16); // transposed shape
    EXPECT_DEATH(builder.build_inplace(bad), "nx, ny");
}

} // namespace
