// Unit tests for the banded+corners structure analysis on synthetic
// matrices with known shape.
#include "core/matrix_structure.hpp"

#include <gtest/gtest.h>

namespace {

using pspl::View2D;
using pspl::core::analyze_structure;
using pspl::core::SolverKind;

/// Cyclic banded matrix: band [lo, hi] around the diagonal (mod n).
View2D<double> cyclic_banded(std::size_t n, int lo, int hi, bool symmetric)
{
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (int o = -lo; o <= hi; ++o) {
            const auto j = static_cast<std::size_t>(
                    ((static_cast<long>(i) + o) % static_cast<long>(n)
                     + static_cast<long>(n))
                    % static_cast<long>(n));
            double v = (o == 0) ? 4.0 : 1.0 / (2.0 + std::abs(o));
            if (!symmetric && o > 0) {
                v *= 1.5; // break symmetry
            }
            a(i, j) = v;
        }
    }
    return a;
}

TEST(MatrixStructure, SymmetricCyclicTridiagonalIsPttrs)
{
    const auto a = cyclic_banded(32, 1, 1, true);
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.corner_width, 1u);
    EXPECT_EQ(s.kl, 1u);
    EXPECT_EQ(s.ku, 1u);
    EXPECT_TRUE(s.q_symmetric);
    EXPECT_EQ(s.recommended, SolverKind::PTTRS);
}

TEST(MatrixStructure, SymmetricCyclicPentadiagonalIsPbtrs)
{
    const auto a = cyclic_banded(32, 2, 2, true);
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.corner_width, 2u);
    EXPECT_EQ(s.kl, 2u);
    EXPECT_EQ(s.ku, 2u);
    EXPECT_TRUE(s.q_symmetric);
    EXPECT_EQ(s.recommended, SolverKind::PBTRS);
}

TEST(MatrixStructure, NonSymmetricCyclicBandIsGbtrs)
{
    const auto a = cyclic_banded(40, 1, 2, false);
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.corner_width, 2u);
    EXPECT_EQ(s.kl, 1u);
    EXPECT_EQ(s.ku, 2u);
    EXPECT_FALSE(s.q_symmetric);
    EXPECT_EQ(s.recommended, SolverKind::GBTRS);
}

TEST(MatrixStructure, DenseMatrixFallsBackToGetrs)
{
    const std::size_t n = 10;
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = 1.0 + static_cast<double>(i * n + j);
        }
    }
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.recommended, SolverKind::GETRS);
}

TEST(MatrixStructure, PureBandWithoutCornersHasZeroWidth)
{
    const std::size_t n = 24;
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 4.0;
        if (i + 1 < n) {
            a(i, i + 1) = 1.0;
            a(i + 1, i) = 1.0;
        }
    }
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.corner_width, 0u);
    EXPECT_EQ(s.kl, 1u);
    EXPECT_EQ(s.ku, 1u);
    EXPECT_TRUE(s.q_symmetric);
    EXPECT_EQ(s.recommended, SolverKind::PTTRS);
}

TEST(MatrixStructure, AsymmetricCorners)
{
    // Band + a single far corner entry on the top right only.
    const std::size_t n = 30;
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 2.0;
    }
    a(0, n - 3) = 1.0; // requires k >= 3
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.corner_width, 3u);
}

TEST(MatrixStructure, ToleranceIgnoresNoise)
{
    auto a = cyclic_banded(16, 1, 1, true);
    // Add sub-tolerance noise everywhere.
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) {
            a(i, j) += 1e-16;
        }
    }
    const auto s = analyze_structure(a, 1e-12);
    EXPECT_EQ(s.corner_width, 1u);
    EXPECT_EQ(s.kl, 1u);
    EXPECT_EQ(s.recommended, SolverKind::PTTRS);
}

TEST(MatrixStructure, NonSymmetricTridiagonalIsGttrs)
{
    const std::size_t n = 30;
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 3.0;
        a(i, (i + 1) % n) = 1.0;
        a((i + 1) % n, i) = -0.5; // non-symmetric
    }
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.corner_width, 1u);
    EXPECT_EQ(s.kl, 1u);
    EXPECT_EQ(s.ku, 1u);
    EXPECT_FALSE(s.q_symmetric);
    EXPECT_EQ(s.recommended, SolverKind::GTTRS);
}

TEST(MatrixStructure, SolverKindNames)
{
    EXPECT_STREQ(to_string(SolverKind::PTTRS), "pttrs");
    EXPECT_STREQ(to_string(SolverKind::GTTRS), "gttrs");
    EXPECT_STREQ(to_string(SolverKind::PBTRS), "pbtrs");
    EXPECT_STREQ(to_string(SolverKind::GBTRS), "gbtrs");
    EXPECT_STREQ(to_string(SolverKind::GETRS), "getrs");
}

} // namespace
