// Death tests for the PSPL_CHECK correctness instrumentation layer: each
// seeded defect class -- out-of-bounds access, dangling alias
// (use-after-free), overlapping deep_copy, cross-batch write conflict,
// uninitialized (poisoned) read -- must actually fire the corresponding
// checker, and the instrumented build must keep producing the same spline
// results as the unchecked one.
//
// Built in every configuration; without PSPL_CHECK the defect tests skip
// (the instrumentation they probe is compiled out).
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "debug/instrument.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/subview.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

namespace {

using pspl::ALL;
using pspl::subview;
using pspl::View;
using pspl::View1D;
using pspl::View2D;

#if defined(PSPL_CHECK)

class DebugChecksDeathTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        // Death tests fork; with OpenMP threads alive only the re-exec
        // style is safe.
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

// Seeded defects live in standalone functions: EXPECT_DEATH is a macro, so
// commas in template argument lists inside the statement would split it.

void seeded_dangling_access()
{
    double* raw = nullptr;
    {
        View1D<double> owner("owner", 16);
        raw = owner.data();
    }
    // Unmanaged wrapper around memory whose owner died: the registry
    // still knows the freed range and its label.
    View<double, 1, pspl::LayoutRight> dangle(raw, {16});
    dangle(3) = 1.0;
}

void seeded_uninitialized_read()
{
    pspl::debug::set_poison(true);
    View1D<double> fresh("never_written", 4);
    View1D<double> dst("dst", 4);
    pspl::deep_copy(dst, fresh);
}

TEST_F(DebugChecksDeathTest, OutOfBoundsAccessReportsExtentProvenance)
{
    View1D<double> v("victim", 4);
    EXPECT_DEATH(v(7) = 1.0, "View 'victim' rank-1 index 0 = 7 is out of "
                             "bounds");
}

TEST_F(DebugChecksDeathTest, OutOfBoundsRank2NamesOffendingDimension)
{
    View2D<double> v("block", 3, 5);
    EXPECT_DEATH(v(1, 9) = 1.0, "rank-2 index 1 = 9 is out of bounds "
                                "\\(extent 5");
}

TEST_F(DebugChecksDeathTest, SubviewRangeOutOfBoundsNamesParent)
{
    View1D<double> v("parent", 8);
    EXPECT_DEATH(subview(v, std::pair<std::size_t, std::size_t>(2, 12)),
                 "subview of 'parent'");
}

TEST_F(DebugChecksDeathTest, DanglingAliasIsUseAfterFree)
{
    EXPECT_DEATH(seeded_dangling_access(),
                 "use-after-free.*freed allocation 'owner'");
}

TEST_F(DebugChecksDeathTest, OverlappingDeepCopyIsRejected)
{
    View1D<double> base("base", 10);
    auto dst = subview(base, std::pair<std::size_t, std::size_t>(0, 6));
    auto src = subview(base, std::pair<std::size_t, std::size_t>(4, 10));
    EXPECT_DEATH(pspl::deep_copy(dst, src), "deep_copy.*'base'.*overlaps");
}

TEST_F(DebugChecksDeathTest, CrossIterationWriteConflictIsDetected)
{
    View1D<double> out("out", 8);
    // Two distinct batch indices write the same element -- the exact race
    // careless kernel fusion over the batch dimension introduces.
    EXPECT_DEATH(pspl::parallel_for("seeded_conflict", std::size_t{8},
                                    [=](std::size_t i) {
                                        out(i / 2) = static_cast<double>(i);
                                    }),
                 "write conflict in region 'seeded_conflict'.*view 'out'");
}

TEST_F(DebugChecksDeathTest, UninitializedReadThroughDeepCopyIsDetected)
{
    EXPECT_DEATH(seeded_uninitialized_read(), "uninitialized.*'never_written'");
}

// ---------------------------------------------------------------------------
// Positive controls: correct code must pass the same instrumentation.
// ---------------------------------------------------------------------------

TEST(DebugChecks, SharedReadOnlyDataIsNotFlaggedAsConflict)
{
    View2D<double> table("table", 4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            table(i, j) = static_cast<double>(i + j);
        }
    }
    View2D<double> out("out", 4, 8);
    // Every iteration reads the whole shared table (like the factorized
    // matrix in the batched solve) but writes only its own column.
    pspl::parallel_for("shared_read", std::size_t{8}, [=](std::size_t col) {
        for (std::size_t i = 0; i < 4; ++i) {
            double acc = 0.0;
            for (std::size_t l = 0; l < 4; ++l) {
                acc += table(i, l);
            }
            out(i, col) = acc;
        }
    });
    EXPECT_EQ(out(0, 0), out(0, 7));
}

TEST(DebugChecks, RegistryTracksLifetimes)
{
    const std::size_t live_before = pspl::debug::live_allocation_count();
    {
        View1D<double> v("tracked", 32);
        EXPECT_EQ(pspl::debug::live_allocation_count(), live_before + 1);
    }
    EXPECT_EQ(pspl::debug::live_allocation_count(), live_before);
    EXPECT_GE(pspl::debug::tombstone_count(), std::size_t{1});
}

TEST(DebugChecks, SubviewSharedOwnershipIsNotUseAfterFree)
{
    View<double, 1, pspl::LayoutStride> alias;
    {
        View1D<double> owner("shared_owner", 8);
        owner(2) = 4.5;
        alias = subview(owner, std::pair<std::size_t, std::size_t>(0, 8));
    }
    // The subview holds shared ownership, so the allocation is still live.
    EXPECT_EQ(alias(2), 4.5);
}

/// The checked build (with the RHS data path poisoned) must reproduce the
/// unchecked builder results: build a spline with every version and check
/// the versions agree to tight ULP bounds, and interpolation holds.
TEST(DebugChecks, CheckedBuildPassesSplineBuilderUlpSuite)
{
    using pspl::core::BuilderVersion;
    constexpr std::size_t n = 64;
    constexpr std::size_t batch = 13; // odd: exercises masked SIMD tails
    const auto basis =
            pspl::bsplines::BSplineBasis::uniform(3, n, 0.0, 1.0);
    const auto pts = basis.interpolation_points();

    // Env-independent: poison state is driven explicitly below, even when
    // the suite runs under PSPL_CHECK_POISON=1.
    pspl::debug::set_poison(false);
    View2D<double> reference("reference", n, batch);
    for (const auto version :
         {BuilderVersion::Baseline, BuilderVersion::Fused,
          BuilderVersion::FusedSpmv, BuilderVersion::FusedSimd,
          BuilderVersion::FusedSpmvSimd}) {
        // Poison only the RHS data path: the factorization setup scatters
        // into zero-initialized Views, which is part of the View contract
        // that poisoning deliberately suspends.
        pspl::core::SplineBuilder builder(basis, version);
        pspl::debug::set_poison(true);
        View2D<double> b("b", n, batch);
        pspl::debug::set_poison(false);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < batch; ++j) {
                b(i, j) = std::sin(6.28318530717958648 * pts[i])
                          + 0.01 * static_cast<double>(j);
            }
        }
        builder.build_inplace(b);
        if (version == BuilderVersion::Baseline) {
            pspl::deep_copy(reference, b);
            // Interpolation property: s(x_i) must reproduce the data.
            pspl::core::SplineEvaluator eval(basis);
            for (std::size_t j = 0; j < batch; ++j) {
                auto coeffs = subview(b, ALL, j);
                const double s0 = eval(pts[0], coeffs);
                EXPECT_NEAR(s0,
                            std::sin(6.28318530717958648 * pts[0])
                                    + 0.01 * static_cast<double>(j),
                            1e-10);
            }
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < batch; ++j) {
                EXPECT_NEAR(b(i, j), reference(i, j), 1e-12)
                        << "version mismatch at (" << i << ", " << j << ")";
            }
        }
    }
}

/// NaN poisoning makes an uninitialized column surface as NaN in the solve
/// chain instead of plausible zero-backed garbage.
TEST(DebugChecks, PoisonedColumnSurfacesAsNaNInSplineChain)
{
    constexpr std::size_t n = 32;
    constexpr std::size_t batch = 4;
    pspl::debug::set_poison(false);
    const auto basis =
            pspl::bsplines::BSplineBasis::uniform(3, n, 0.0, 1.0);
    pspl::core::SplineBuilder builder(basis,
                                      pspl::core::BuilderVersion::Fused);

    pspl::debug::set_poison(true);
    View2D<double> b("partial_rhs", n, batch);
    pspl::debug::set_poison(false);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            if (j != 2) {
                b(i, j) = 1.0 + static_cast<double>(i);
            }
        }
    }
    builder.build_inplace(b);
    // The untouched column is NaN all the way through; its neighbours are
    // clean (batch entries are independent).
    EXPECT_TRUE(std::isnan(b(0, 2)));
    EXPECT_FALSE(std::isnan(b(0, 1)));
    EXPECT_FALSE(std::isnan(b(0, 3)));
}

#else // !PSPL_CHECK

TEST(DebugChecks, InstrumentationCompiledOut)
{
    static_assert(!pspl::debug::check_enabled);
    GTEST_SKIP() << "PSPL_CHECK=OFF: instrumentation layer not compiled in";
}

#endif

} // namespace
