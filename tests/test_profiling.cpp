// Observability-layer tests: nested span parentage, the disabled-mode
// zero-allocation guarantee, deterministic multi-threaded merges, the
// machine-readable perf report and the chrome-trace export.
#include "parallel/parallel.hpp"
#include "parallel/profiling.hpp"
#include "parallel/view.hpp"
#include "perf/report.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

namespace prof = pspl::profiling;

// Global allocation counter fed by a replaced operator new: the
// disabled-mode test asserts the instrumentation path performs no heap
// allocation when profiling is off (spans on hot paths must be free).
std::atomic<std::uint64_t> g_new_calls{0};

} // namespace

void* operator new(std::size_t size)
{
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void* operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void* p) noexcept
{
    std::free(p); // NOLINT: pairs with the malloc-backed operator new above
}

void operator delete(void* p, std::size_t) noexcept
{
    ::operator delete(p);
}

void operator delete[](void* p) noexcept
{
    ::operator delete(p);
}

void operator delete[](void* p, std::size_t) noexcept
{
    ::operator delete(p);
}

namespace {

class ProfilingFixture : public ::testing::Test {
protected:
    void SetUp() override
    {
        prof::clear();
        prof::set_enabled(true);
    }
    void TearDown() override
    {
        prof::set_enabled(false);
        prof::clear();
    }
};

TEST_F(ProfilingFixture, NestedSpansRecordParentage)
{
    {
        prof::ScopedRegion outer("outer");
        {
            prof::ScopedSpan inner("inner");
        }
        {
            prof::ScopedSpan inner("inner");
        }
    }
    const auto tree = prof::snapshot_tree();
    ASSERT_TRUE(tree.count("outer"));
    ASSERT_TRUE(tree.count("outer/inner"));
    EXPECT_EQ(tree.at("outer").count, 1u);
    EXPECT_EQ(tree.at("outer/inner").count, 2u);
    // The leaf-keyed snapshot aggregates the same events by final label.
    const auto flat = prof::snapshot();
    ASSERT_TRUE(flat.count("inner"));
    EXPECT_EQ(flat.at("inner").count, 2u);
    EXPECT_FALSE(flat.count("outer/inner"));
}

TEST_F(ProfilingFixture, KernelSpansNestUnderOpenRegion)
{
    {
        prof::ScopedRegion region("solve_phase");
        pspl::parallel_for("worker_kernel", std::size_t{64},
                           [](std::size_t) {});
    }
    const auto tree = prof::snapshot_tree();
    ASSERT_TRUE(tree.count("solve_phase/worker_kernel"));
    EXPECT_EQ(tree.at("solve_phase/worker_kernel").count, 1u);
}

TEST_F(ProfilingFixture, CountersAttachToSpans)
{
    {
        prof::ScopedSpan span("counted_kernel");
        span.add_counters(/*bytes=*/1.0e9, /*flops=*/2.0e9);
    }
    const auto stats = prof::stats_for("counted_kernel");
    EXPECT_EQ(stats.count, 1u);
    EXPECT_DOUBLE_EQ(stats.bytes, 1.0e9);
    EXPECT_DOUBLE_EQ(stats.flops, 2.0e9);
    EXPECT_GT(stats.achieved_bw_gbs(), 0.0);
    EXPECT_GT(stats.achieved_gflops(), 0.0);

    // Standalone counters become zero-duration child events under the
    // currently open span (how fused kernels attribute modelled traffic).
    {
        prof::ScopedSpan span("fused_kernel");
        prof::add_counters("pttrs", 5.0e8, 1.0e8);
    }
    const auto tree = prof::snapshot_tree();
    ASSERT_TRUE(tree.count("fused_kernel/pttrs"));
    EXPECT_DOUBLE_EQ(tree.at("fused_kernel/pttrs").bytes, 5.0e8);
    EXPECT_EQ(tree.at("fused_kernel/pttrs").count, 0u);
}

TEST(ProfilingDisabled, SpansAllocateNothingWhenDisabled)
{
    prof::set_enabled(false);
    prof::clear();
    // Warm both code paths once so one-time lazy state is excluded.
    {
        prof::ScopedSpan warm("warmup");
        warm.add_counters(1.0, 1.0);
    }
    const std::uint64_t before = g_new_calls.load();
    for (int i = 0; i < 1000; ++i) {
        prof::ScopedSpan span("disabled_span");
        span.add_counters(8.0, 2.0);
    }
    prof::add_counters("disabled_counter", 1.0, 1.0);
    const std::uint64_t after = g_new_calls.load();
    EXPECT_EQ(after, before);
    EXPECT_EQ(prof::stats_for("disabled_span").count, 0u);
}

TEST_F(ProfilingFixture, MultiThreadedMergeIsDeterministic)
{
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                prof::ScopedSpan span("mt_span");
            }
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    const auto first = prof::snapshot_tree();
    ASSERT_TRUE(first.count("mt_span"));
    EXPECT_EQ(first.at("mt_span").count,
              static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
    // Once producers are quiescent, repeated snapshots agree exactly.
    const auto second = prof::snapshot_tree();
    ASSERT_EQ(first.size(), second.size());
    for (const auto& [path, stats] : first) {
        ASSERT_TRUE(second.count(path));
        EXPECT_EQ(second.at(path).count, stats.count);
        EXPECT_DOUBLE_EQ(second.at(path).total_seconds,
                         stats.total_seconds);
    }
    EXPECT_EQ(prof::event_count(),
              static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

TEST_F(ProfilingFixture, ClearHidesEarlierEpochs)
{
    prof::record("before_clear", 1.0);
    ASSERT_EQ(prof::stats_for("before_clear").count, 1u);
    prof::clear();
    EXPECT_TRUE(prof::snapshot().empty());
    prof::record("after_clear", 1.0);
    EXPECT_EQ(prof::snapshot().size(), 1u);
}

TEST_F(ProfilingFixture, ReportJsonSchemaRoundTrip)
{
    {
        prof::ScopedSpan span("report_span");
        span.add_counters(1.0e6, 2.0e6);
    }
    const std::string report = pspl::perf::report_json();
    // Stable schema markers the CI diff tooling keys on.
    EXPECT_NE(report.find("\"schema\": \"pspl-perf-report-v5\""),
              std::string::npos);
    for (const char* key :
         {"\"isa\"", "\"host\"", "\"peak_gflops\"", "\"peak_bw_gbs\"",
          "\"memory\"", "\"peak_bytes\"", "\"spans\"", "\"path\"",
          "\"count\"", "\"seconds\"", "\"bytes\"", "\"flops\"",
          "\"precision\"", "\"refine_iters\"", "\"backend\"",
          "\"counter_only\"", "\"achieved_bw_gbs\"", "\"achieved_gflops\"",
          "\"bw_percent_of_peak\""}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
    EXPECT_NE(report.find("report_span"), std::string::npos);
    // Structural round-trip: braces and brackets balance and close at the
    // end (string values in the report never contain either).
    int depth = 0;
    for (const char c : report) {
        depth += (c == '{' || c == '[');
        depth -= (c == '}' || c == ']');
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(report.front(), '{');
    EXPECT_EQ(report.back(), '}');
}

TEST_F(ProfilingFixture, ReportMarksCounterOnlySpans)
{
    // A timed span with attributed counters is a measurement...
    {
        prof::ScopedSpan span("timed_with_counters");
        span.add_counters(4.0e6, 8.0e6);
    }
    // ...an attribution-only counter child (cost model booked without a
    // sample) is not, and its zero achieved_bw_gbs must be flagged as
    // structural rather than read as a measured 0 GB/s.
    prof::add_counters("attribution_only_child", 1.0e6, 2.0e6);
    const std::string report = pspl::perf::report_json();
    const auto flag_for = [&](const std::string& path) {
        const auto at = report.find("\"path\": \"" + path + "\"");
        EXPECT_NE(at, std::string::npos) << path;
        const auto key = report.find("\"counter_only\": ", at);
        EXPECT_NE(key, std::string::npos) << path;
        const auto end = report.find(',', key);
        return report.substr(key, end - key);
    };
    EXPECT_EQ(flag_for("timed_with_counters"), "\"counter_only\": false");
    EXPECT_EQ(flag_for("attribution_only_child"), "\"counter_only\": true");
}

TEST_F(ProfilingFixture, ChromeTraceWritesLoadableFile)
{
    {
        prof::ScopedRegion outer("trace_outer");
        prof::ScopedSpan inner("trace_inner");
        prof::add_counters("trace_counter", 64.0, 32.0);
    }
    const std::string path = ::testing::TempDir() + "pspl_trace_test.json";
    ASSERT_TRUE(prof::write_chrome_trace(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string trace = buf.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos); // spans
    EXPECT_NE(trace.find("\"ph\": \"i\""), std::string::npos); // counters
    EXPECT_NE(trace.find("trace_inner"), std::string::npos);
    EXPECT_NE(trace.find("trace_outer/trace_inner"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ProfilingMemory, ViewAllocationsDriveHighWaterMark)
{
    prof::reset_memory_peak();
    const auto before = prof::memory_stats();
    {
        pspl::View1D<double> v("hwm_probe", 4096);
        const auto during = prof::memory_stats();
        EXPECT_GE(during.live_bytes, before.live_bytes + 4096 * 8);
        EXPECT_GE(during.peak_bytes, during.live_bytes);
        EXPECT_GT(during.allocations, before.allocations);
    }
    const auto after = prof::memory_stats();
    EXPECT_EQ(after.live_bytes, before.live_bytes);
    EXPECT_GE(after.peak_bytes, before.live_bytes + 4096 * 8);
}

} // namespace
