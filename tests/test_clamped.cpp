// Tests for clamped (open-knot-vector, non-periodic) B-splines: basis
// properties, Greville collocation, the corner-free (k = 0) solver path,
// interpolation accuracy, boundary behaviour and spline quadrature.
#include "bsplines/collocation.hpp"
#include "bsplines/knots.hpp"
#include "core/matrix_structure.hpp"
#include "core/schur_solver.hpp"
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using bsplines::Boundary;
using core::SplineBuilder;
using core::SplineEvaluator;

class ClampedParam
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
protected:
    BSplineBasis make(std::size_t ncells) const
    {
        const auto [degree, uniform] = GetParam();
        if (uniform) {
            return BSplineBasis::clamped_uniform(degree, ncells, 0.0, 2.0);
        }
        return BSplineBasis::clamped_non_uniform(
                degree, bsplines::stretched_breaks(ncells, 0.0, 2.0, 0.4));
    }
};

TEST_P(ClampedParam, BasisCountAndBoundaryFlags)
{
    const auto basis = make(20);
    const auto [degree, uniform] = GetParam();
    (void)uniform;
    EXPECT_FALSE(basis.is_periodic());
    EXPECT_EQ(basis.boundary(), Boundary::Clamped);
    EXPECT_EQ(basis.nbasis(), 20u + static_cast<std::size_t>(degree));
}

TEST_P(ClampedParam, PartitionOfUnityIncludingBoundaries)
{
    const auto basis = make(16);
    std::vector<double> vals(static_cast<std::size_t>(basis.degree()) + 1);
    for (int s = 0; s <= 400; ++s) {
        const double x = 2.0 * static_cast<double>(s) / 400.0;
        basis.eval_basis(x, vals.data());
        double sum = 0.0;
        for (const double v : vals) {
            EXPECT_GE(v, -1e-14);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << "x=" << x;
    }
}

TEST_P(ClampedParam, EndpointBasisIsInterpolatory)
{
    // With an open knot vector, the first basis function equals 1 at xmin
    // and the last equals 1 at xmax.
    const auto basis = make(12);
    std::vector<double> vals(static_cast<std::size_t>(basis.degree()) + 1);
    const long jmin0 = basis.eval_basis(basis.xmin(), vals.data());
    EXPECT_EQ(basis.basis_index(jmin0), 0u);
    EXPECT_NEAR(vals[0], 1.0, 1e-14);

    const long jmin1 = basis.eval_basis(basis.xmax(), vals.data());
    EXPECT_EQ(basis.basis_index(jmin1 + basis.degree()), basis.nbasis() - 1);
    EXPECT_NEAR(vals[static_cast<std::size_t>(basis.degree())], 1.0, 1e-14);
}

TEST_P(ClampedParam, GrevillePointsSpanClosedDomain)
{
    const auto basis = make(24);
    const auto pts = basis.interpolation_points();
    ASSERT_EQ(pts.size(), basis.nbasis());
    EXPECT_DOUBLE_EQ(pts.front(), basis.xmin());
    EXPECT_DOUBLE_EQ(pts.back(), basis.xmax());
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        EXPECT_LT(pts[i], pts[i + 1]); // strictly increasing, no wrap
    }
}

TEST_P(ClampedParam, CollocationMatrixHasNoCorners)
{
    const auto basis = make(32);
    const auto a = bsplines::collocation_matrix(basis);
    const auto s = core::analyze_structure(a);
    EXPECT_EQ(s.corner_width, 0u);
    EXPECT_LE(s.kl + s.ku, 2u * static_cast<std::size_t>(basis.degree()));
    core::SchurSolver solver(a);
    EXPECT_EQ(solver.device_data().k, 0u);
}

TEST_P(ClampedParam, InterpolationPropertyHolds)
{
    const auto basis = make(40);
    const std::size_t n = basis.nbasis();
    SplineBuilder builder(basis);
    View2D<double> b("b", n, 3);
    const auto pts = basis.interpolation_points();
    auto f = [](double x, std::size_t j) {
        return std::exp(-x) * std::sin(3.0 * x + static_cast<double>(j));
    };
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            b(i, j) = f(pts[i], j);
        }
    }
    const auto values = clone(b);
    builder.build_inplace(b);
    SplineEvaluator eval(basis);
    for (std::size_t j = 0; j < 3; ++j) {
        auto coeffs = subview(b, ALL, j);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(eval(pts[i], coeffs), values(i, j), 1e-11);
        }
    }
}

TEST_P(ClampedParam, ConvergesAtExpectedOrder)
{
    const auto [degree, uniform] = GetParam();
    auto max_err = [&](std::size_t ncells) {
        const auto basis =
                uniform ? BSplineBasis::clamped_uniform(degree, ncells, 0.0,
                                                        2.0)
                        : BSplineBasis::clamped_non_uniform(
                                  degree, bsplines::stretched_breaks(
                                                  ncells, 0.0, 2.0, 0.4));
        const std::size_t n = basis.nbasis();
        SplineBuilder builder(basis);
        View2D<double> b("b", n, 1);
        const auto pts = basis.interpolation_points();
        auto f = [](double x) { return std::sin(2.5 * x) + 0.2 * x; };
        for (std::size_t i = 0; i < n; ++i) {
            b(i, 0) = f(pts[i]);
        }
        builder.build_inplace(b);
        SplineEvaluator eval(basis);
        auto coeffs = subview(b, ALL, std::size_t{0});
        double err = 0.0;
        for (int s = 0; s <= 2000; ++s) {
            const double x = 2.0 * static_cast<double>(s) / 2000.0;
            err = std::max(err, std::abs(eval(x, coeffs) - f(x)));
        }
        return err;
    };
    const double e1 = max_err(32);
    const double e2 = max_err(64);
    EXPECT_GT(e1 / e2, std::pow(2.0, degree + 1) / 4.0)
            << "e1=" << e1 << " e2=" << e2;
}

TEST_P(ClampedParam, EvaluatorClampsOutsideDomain)
{
    const auto basis = make(16);
    const std::size_t n = basis.nbasis();
    View1D<double> coeffs("c", n);
    deep_copy(coeffs, 1.0);
    SplineEvaluator eval(basis);
    // Constant spline: inside and (clamped) outside all evaluate to 1.
    EXPECT_NEAR(eval(-5.0, coeffs), 1.0, 1e-13);
    EXPECT_NEAR(eval(7.0, coeffs), 1.0, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(DegreesGrids, ClampedParam,
                         ::testing::Combine(::testing::Values(3, 4, 5),
                                            ::testing::Bool()),
                         [](const auto& info) {
                             const int d = std::get<0>(info.param);
                             const bool u = std::get<1>(info.param);
                             return std::string("deg") + std::to_string(d)
                                    + (u ? "_uniform" : "_nonuniform");
                         });

TEST(ClampedBasis, LinearDegreeOneIsPiecewiseLinearInterpolation)
{
    const auto basis = BSplineBasis::clamped_uniform(1, 10, 0.0, 1.0);
    EXPECT_EQ(basis.nbasis(), 11u);
    // Degree-1 clamped splines at Greville points = hat functions at the
    // grid nodes: the collocation matrix is the identity.
    const auto a = bsplines::collocation_matrix(basis);
    for (std::size_t i = 0; i < 11; ++i) {
        for (std::size_t j = 0; j < 11; ++j) {
            EXPECT_NEAR(a(i, j), i == j ? 1.0 : 0.0, 1e-14);
        }
    }
}

TEST(ClampedBasis, IntegralsSumToDomainLength)
{
    for (const int degree : {1, 2, 3, 4, 5}) {
        const auto basis = BSplineBasis::clamped_uniform(degree, 13, -1.0, 3.0);
        double total = 0.0;
        for (std::size_t i = 0; i < basis.nbasis(); ++i) {
            total += basis.basis_integral(i);
        }
        // Partition of unity integrates to the domain length.
        EXPECT_NEAR(total, 4.0, 1e-12) << "degree " << degree;
    }
}

TEST(PeriodicBasis, IntegralsSumToDomainLength)
{
    for (const int degree : {3, 4, 5}) {
        const auto basis = BSplineBasis::uniform(degree, 17, 0.0, 2.0);
        double total = 0.0;
        for (std::size_t i = 0; i < basis.nbasis(); ++i) {
            total += basis.basis_integral(i);
        }
        EXPECT_NEAR(total, 2.0, 1e-12) << "degree " << degree;
    }
}

TEST(SplineQuadrature, ExactForInterpolatedPolynomialClamped)
{
    // A degree-3 spline represents cubics exactly on a clamped basis; the
    // analytic integral must match.
    const auto basis = BSplineBasis::clamped_uniform(3, 16, 0.0, 1.0);
    const std::size_t n = basis.nbasis();
    SplineBuilder builder(basis);
    View2D<double> b("b", n, 1);
    const auto pts = basis.interpolation_points();
    auto f = [](double x) { return x * x * x - 0.5 * x + 2.0; };
    for (std::size_t i = 0; i < n; ++i) {
        b(i, 0) = f(pts[i]);
    }
    builder.build_inplace(b);
    SplineEvaluator eval(basis);
    auto coeffs = subview(b, ALL, std::size_t{0});
    // Integral of x^3 - 0.5x + 2 on [0,1] = 1/4 - 1/4 + 2 = 2.
    EXPECT_NEAR(eval.integrate(coeffs), 2.0, 1e-12);
    // And the spline itself reproduces the cubic pointwise.
    for (int s = 0; s <= 100; ++s) {
        const double x = static_cast<double>(s) / 100.0;
        EXPECT_NEAR(eval(x, coeffs), f(x), 1e-11);
    }
}

TEST(SplineQuadrature, PeriodicIntegralOfSinIsZero)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    SplineBuilder builder(basis);
    View2D<double> b("b", 64, 1);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < 64; ++i) {
        b(i, 0) = std::sin(2.0 * std::numbers::pi * pts[i]) + 3.0;
    }
    builder.build_inplace(b);
    SplineEvaluator eval(basis);
    auto coeffs = subview(b, ALL, std::size_t{0});
    EXPECT_NEAR(eval.integrate(coeffs), 3.0, 1e-10);
}

} // namespace
