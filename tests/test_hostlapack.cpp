// Unit tests for the host LAPACK subset against dense references and exact
// systems, including parameterized sweeps over sizes and bandwidths.
#include "hostlapack/dense.hpp"
#include "hostlapack/gbtrf.hpp"
#include "hostlapack/getrf.hpp"
#include "hostlapack/gttrf.hpp"
#include "hostlapack/pbtrf.hpp"
#include "hostlapack/pttrf.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>
#include <vector>

namespace {

using namespace pspl;
namespace hl = pspl::hostlapack;

/// Deterministic random matrix with a dominant diagonal (well conditioned).
View2D<double> random_matrix(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = dist(rng);
        }
        a(i, i) += static_cast<double>(n);
    }
    return a;
}

View1D<double> random_vector(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View1D<double> b("b", n);
    for (std::size_t i = 0; i < n; ++i) {
        b(i) = dist(rng);
    }
    return b;
}

// ---------------------------------------------------------------------------
// Dense helpers
// ---------------------------------------------------------------------------

TEST(Dense, GemmMatchesHandComputation)
{
    View2D<double> a("a", 2, 3);
    View2D<double> b("b", 3, 2);
    View2D<double> c("c", 2, 2);
    int v = 1;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            a(i, j) = v++;
        }
    }
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            b(i, j) = v++;
        }
    }
    hl::gemm(1.0, a, b, 0.0, c);
    // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
    // beta accumulation
    hl::gemm(1.0, a, b, 1.0, c);
    EXPECT_DOUBLE_EQ(c(0, 0), 116.0);
}

TEST(Dense, GemvAlphaBeta)
{
    View2D<double> a("a", 2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    View1D<double> x("x", 2);
    x(0) = 1.0;
    x(1) = 1.0;
    View1D<double> y("y", 2);
    y(0) = 10.0;
    y(1) = 10.0;
    hl::gemv(2.0, a, x, 0.5, y);
    EXPECT_DOUBLE_EQ(y(0), 2.0 * 3.0 + 5.0);
    EXPECT_DOUBLE_EQ(y(1), 2.0 * 7.0 + 5.0);
}

TEST(Dense, NormsAndIdentity)
{
    auto id = hl::identity(4);
    EXPECT_DOUBLE_EQ(hl::norm_frobenius(id), 2.0);
    EXPECT_DOUBLE_EQ(hl::max_abs(id), 1.0);
    View1D<double> v("v", 3);
    v(0) = -3.0;
    v(1) = 2.0;
    EXPECT_DOUBLE_EQ(hl::max_abs_vec(v), 3.0);
}

// ---------------------------------------------------------------------------
// getrf / getrs
// ---------------------------------------------------------------------------

class GetrfSized : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GetrfSized, SolvesRandomSystem)
{
    const std::size_t n = GetParam();
    auto a = random_matrix(n, 42 + static_cast<unsigned>(n));
    auto b = random_vector(n, 7);
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::getrf(lu, ipiv), 0);
    auto x = clone(b);
    hl::getrs(lu, ipiv, x);
    EXPECT_LT(hl::residual_inf(a, x, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSized,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 33, 64, 129));

TEST(Getrf, RequiresPivoting)
{
    // Zero on the initial diagonal forces a row interchange.
    View2D<double> a("a", 2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", 2);
    ASSERT_EQ(hl::getrf(lu, ipiv), 0);
    View1D<double> b("b", 2);
    b(0) = 3.0;
    b(1) = 5.0;
    auto x = clone(b);
    hl::getrs(lu, ipiv, x);
    EXPECT_DOUBLE_EQ(x(0), 5.0);
    EXPECT_DOUBLE_EQ(x(1), 3.0);
}

TEST(Getrf, DetectsSingularMatrix)
{
    View2D<double> a("a", 3, 3);
    // Rank-1 matrix.
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            a(i, j) = static_cast<double>((i + 1) * (j + 1));
        }
    }
    View1D<int> ipiv("ipiv", 3);
    EXPECT_GT(hl::getrf(a, ipiv), 0);
}

TEST(Getrs, SolvesStridedRhs)
{
    const std::size_t n = 6;
    auto a = random_matrix(n, 3);
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::getrf(lu, ipiv), 0);
    View2D<double> block("block", n, 4);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            block(i, j) = std::cos(static_cast<double>(i * 4 + j));
        }
    }
    auto ref = clone(block);
    for (std::size_t j = 0; j < 4; ++j) {
        auto col = subview(block, ALL, j);
        hl::getrs(lu, ipiv, col);
        auto bcol = subview(ref, ALL, j);
        EXPECT_LT(hl::residual_inf(a, col, bcol), 1e-10) << "column " << j;
    }
}

// ---------------------------------------------------------------------------
// gbtrf / gbtrs
// ---------------------------------------------------------------------------

View2D<double> random_banded(std::size_t n, std::size_t kl, std::size_t ku,
                             unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t jlo = i > kl ? i - kl : 0;
        const std::size_t jhi = std::min(n - 1, i + ku);
        for (std::size_t j = jlo; j <= jhi; ++j) {
            a(i, j) = dist(rng);
        }
        a(i, i) += 4.0;
    }
    return a;
}

class GbtrfParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>>
{
};

TEST_P(GbtrfParam, MatchesDenseSolve)
{
    const auto [n, kl, ku] = GetParam();
    auto a = random_banded(n, kl, ku, 11 + static_cast<unsigned>(n + kl + ku));
    auto b = random_vector(n, 5);

    // Banded path.
    auto band = hl::pack_band(a, kl, ku);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::gbtrf(band, ipiv), 0);
    auto x = clone(b);
    hl::gbtrs(band, ipiv, x);

    EXPECT_LT(hl::residual_inf(a, x, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
        Shapes, GbtrfParam,
        ::testing::Values(std::make_tuple(5, 1, 1), std::make_tuple(10, 2, 1),
                          std::make_tuple(10, 1, 2), std::make_tuple(20, 3, 3),
                          std::make_tuple(50, 2, 4), std::make_tuple(64, 5, 2),
                          std::make_tuple(100, 1, 1),
                          std::make_tuple(33, 0, 2)));

TEST(Gbtrf, PivotingKicksIn)
{
    // Small diagonal forces interchanges inside the band.
    const std::size_t n = 12;
    auto a = random_banded(n, 2, 2, 19);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) -= 4.0; // remove dominance
    }
    auto b = random_vector(n, 23);
    auto band = hl::pack_band(a, 2, 2);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::gbtrf(band, ipiv), 0);
    auto x = clone(b);
    hl::gbtrs(band, ipiv, x);
    EXPECT_LT(hl::residual_inf(a, x, b), 1e-9);
    // At least one interchange should have occurred.
    bool swapped = false;
    for (std::size_t i = 0; i < n; ++i) {
        swapped = swapped || (ipiv(i) != static_cast<int>(i));
    }
    EXPECT_TRUE(swapped);
}

TEST(Gbtrf, DetectsSingular)
{
    View2D<double> a("a", 4, 4); // all zero
    auto band = hl::pack_band(a, 1, 1);
    View1D<int> ipiv("ipiv", 4);
    EXPECT_GT(hl::gbtrf(band, ipiv), 0);
}

TEST(BandMatrix, PackRoundTrip)
{
    auto a = random_banded(9, 2, 1, 31);
    auto band = hl::pack_band(a, 2, 1);
    for (std::size_t i = 0; i < 9; ++i) {
        for (std::size_t j = 0; j < 9; ++j) {
            if (band.in_band(i, j)) {
                EXPECT_DOUBLE_EQ(band.at(i, j), a(i, j));
            } else {
                EXPECT_EQ(a(i, j), 0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pbtrf / pbtrs
// ---------------------------------------------------------------------------

/// SPD banded matrix: diagonally dominant symmetric band.
View2D<double> spd_banded(std::size_t n, std::size_t kd, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j <= std::min(n - 1, i + kd); ++j) {
            const double v = dist(rng);
            a(i, j) = v;
            a(j, i) = v;
        }
        a(i, i) = 2.0 * static_cast<double>(kd) + 1.0;
    }
    return a;
}

class PbtrfParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(PbtrfParam, MatchesDenseSolve)
{
    const auto [n, kd] = GetParam();
    auto a = spd_banded(n, kd, 17 + static_cast<unsigned>(n));
    auto b = random_vector(n, 29);
    auto sym = hl::pack_sym_band(a, kd);
    ASSERT_EQ(hl::pbtrf(sym), 0);
    auto x = clone(b);
    hl::pbtrs(sym, x);
    EXPECT_LT(hl::residual_inf(a, x, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PbtrfParam,
                         ::testing::Values(std::make_tuple(5, 1),
                                           std::make_tuple(10, 2),
                                           std::make_tuple(20, 3),
                                           std::make_tuple(50, 2),
                                           std::make_tuple(100, 4),
                                           std::make_tuple(7, 0)));

TEST(Pbtrf, RejectsIndefiniteMatrix)
{
    View2D<double> a("a", 3, 3);
    a(0, 0) = 1.0;
    a(1, 1) = -1.0; // indefinite
    a(2, 2) = 1.0;
    auto sym = hl::pack_sym_band(a, 1);
    EXPECT_EQ(hl::pbtrf(sym), 2);
}

TEST(Pbtrf, CholeskyFactorIsCorrect)
{
    const std::size_t n = 8;
    const std::size_t kd = 2;
    auto a = spd_banded(n, kd, 3);
    auto sym = hl::pack_sym_band(a, kd);
    ASSERT_EQ(hl::pbtrf(sym), 0);
    // Reconstruct L * L^T and compare against A on the lower band.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i > kd ? i - kd : 0; j <= i; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k <= j; ++k) {
                const double lik = (i >= k && i - k <= kd) ? sym.ab(i - k, k)
                                                           : 0.0;
                const double ljk = (j >= k && j - k <= kd) ? sym.ab(j - k, k)
                                                           : 0.0;
                acc += lik * ljk;
            }
            EXPECT_NEAR(acc, a(i, j), 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// gttrf / gttrs
// ---------------------------------------------------------------------------

/// Non-symmetric tridiagonal matrix; `dominant` controls whether pivoting
/// will be required.
View2D<double> tridiag_matrix(std::size_t n, bool dominant, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = dominant ? 4.0 + dist(rng) : 0.1 * dist(rng);
        if (i + 1 < n) {
            a(i, i + 1) = 1.0 + dist(rng);
            a(i + 1, i) = -1.0 + dist(rng);
        }
    }
    return a;
}

class GttrfParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>>
{
};

TEST_P(GttrfParam, MatchesDenseSolve)
{
    const auto [n, dominant] = GetParam();
    const auto a = tridiag_matrix(n, dominant, 41 + static_cast<unsigned>(n));
    View1D<double> dl("dl", n > 1 ? n - 1 : 1);
    View1D<double> d("d", n);
    View1D<double> du("du", n > 1 ? n - 1 : 1);
    View1D<double> du2("du2", n > 2 ? n - 2 : 1);
    View1D<int> ipiv("ipiv", n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = a(i, i);
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        dl(i) = a(i + 1, i);
        du(i) = a(i, i + 1);
    }
    ASSERT_EQ(hl::gttrf(dl, d, du, du2, ipiv), 0);
    const auto b = random_vector(n, 37);
    auto x = clone(b);
    hl::gttrs(dl, d, du, du2, ipiv, x);
    EXPECT_LT(hl::residual_inf(a, x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GttrfParam,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 20,
                                                              100),
                                            ::testing::Bool()));

TEST(Gttrf, PivotingActuallyHappensOnWeakDiagonal)
{
    const std::size_t n = 40;
    const auto a = tridiag_matrix(n, false, 7);
    View1D<double> dl("dl", n - 1);
    View1D<double> d("d", n);
    View1D<double> du("du", n - 1);
    View1D<double> du2("du2", n - 2);
    View1D<int> ipiv("ipiv", n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = a(i, i);
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        dl(i) = a(i + 1, i);
        du(i) = a(i, i + 1);
    }
    ASSERT_EQ(hl::gttrf(dl, d, du, du2, ipiv), 0);
    bool swapped = false;
    bool fill = false;
    for (std::size_t i = 0; i < n; ++i) {
        swapped = swapped || (ipiv(i) != static_cast<int>(i));
    }
    for (std::size_t i = 0; i + 2 < n; ++i) {
        fill = fill || (du2(i) != 0.0);
    }
    EXPECT_TRUE(swapped);
    EXPECT_TRUE(fill); // pivoting produces the second superdiagonal
}

TEST(Gttrf, DetectsSingular)
{
    View1D<double> dl("dl", 2);
    View1D<double> d("d", 3); // all zero -> singular
    View1D<double> du("du", 2);
    View1D<double> du2("du2", 1);
    View1D<int> ipiv("ipiv", 3);
    EXPECT_GT(hl::gttrf(dl, d, du, du2, ipiv), 0);
}

// ---------------------------------------------------------------------------
// pttrf / pttrs
// ---------------------------------------------------------------------------

class PttrfSized : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PttrfSized, SolvesSpdTridiagonal)
{
    const std::size_t n = GetParam();
    // Classic [-1, 2, -1] Laplacian plus identity: SPD tridiagonal.
    View2D<double> a("a", n, n);
    View1D<double> d("d", n);
    View1D<double> e("e", n > 1 ? n - 1 : 1);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 3.0;
        d(i) = 3.0;
        if (i + 1 < n) {
            a(i, i + 1) = -1.0;
            a(i + 1, i) = -1.0;
            e(i) = -1.0;
        }
    }
    auto b = random_vector(n, 13);
    ASSERT_EQ(hl::pttrf(d, e), 0);
    auto x = clone(b);
    hl::pttrs(d, e, x);
    EXPECT_LT(hl::residual_inf(a, x, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PttrfSized,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

TEST(Pttrf, RejectsNonPositive)
{
    View1D<double> d("d", 3);
    View1D<double> e("e", 2);
    d(0) = 1.0;
    d(1) = 0.25;
    d(2) = 1.0;
    e(0) = 1.0; // makes the second pivot 0.25 - 1 = -0.75
    e(1) = 0.0;
    EXPECT_GT(hl::pttrf(d, e), 0);
}

TEST(Pttrf, FactorizationIsLdlt)
{
    const std::size_t n = 5;
    View1D<double> d("d", n);
    View1D<double> e("e", n - 1);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = 4.0 + static_cast<double>(i);
        a(i, i) = d(i);
        if (i + 1 < n) {
            e(i) = 1.0 - 0.1 * static_cast<double>(i);
            a(i, i + 1) = e(i);
            a(i + 1, i) = e(i);
        }
    }
    ASSERT_EQ(hl::pttrf(d, e), 0);
    // Rebuild A = L D L^T from the factors.
    for (std::size_t i = 0; i < n; ++i) {
        // diagonal: d_i + l_{i-1}^2 d_{i-1}
        double diag = d(i);
        if (i > 0) {
            diag += e(i - 1) * e(i - 1) * d(i - 1);
        }
        EXPECT_NEAR(diag, a(i, i), 1e-12);
        if (i + 1 < n) {
            EXPECT_NEAR(e(i) * d(i), a(i, i + 1), 1e-12);
        }
    }
}

} // namespace
