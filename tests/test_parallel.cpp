// Unit tests for the execution spaces, parallel dispatch and profiling.
#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

namespace {

using pspl::MDRangePolicy;
using pspl::RangePolicy;
using pspl::View1D;
using pspl::View2D;

template <class Exec>
class ParallelTyped : public ::testing::Test
{
};

#if defined(PSPL_ENABLE_OPENMP)
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::OpenMP, pspl::Threads>;
#else
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::Threads>;
#endif
TYPED_TEST_SUITE(ParallelTyped, ExecSpaces);

TYPED_TEST(ParallelTyped, ForVisitsEveryIndexOnce)
{
    const std::size_t n = 1000;
    View1D<int> hits("hits", n);
    pspl::parallel_for("test_for", RangePolicy<TypeParam>(n),
                       [=](std::size_t i) { hits(i) += 1; });
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits(i), 1) << i;
    }
}

TYPED_TEST(ParallelTyped, ForRespectsBeginEnd)
{
    const std::size_t n = 100;
    View1D<int> hits("hits", n);
    pspl::parallel_for("test_for_range", RangePolicy<TypeParam>(10, 20),
                       [=](std::size_t i) { hits(i) = 1; });
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits(i), (i >= 10 && i < 20) ? 1 : 0);
    }
}

TYPED_TEST(ParallelTyped, MDRange2Covers)
{
    View2D<int> hits("hits", 13, 17);
    pspl::parallel_for("test_md2", MDRangePolicy<2, TypeParam>({13, 17}),
                       [=](std::size_t i, std::size_t j) { hits(i, j) += 1; });
    for (std::size_t i = 0; i < 13; ++i) {
        for (std::size_t j = 0; j < 17; ++j) {
            EXPECT_EQ(hits(i, j), 1);
        }
    }
}

TYPED_TEST(ParallelTyped, MDRange3Covers)
{
    pspl::View3D<int> hits("hits", 5, 6, 7);
    pspl::parallel_for("test_md3", MDRangePolicy<3, TypeParam>({5, 6, 7}),
                       [=](std::size_t i, std::size_t j, std::size_t k) {
                           hits(i, j, k) += 1;
                       });
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 6; ++j) {
            for (std::size_t k = 0; k < 7; ++k) {
                EXPECT_EQ(hits(i, j, k), 1);
            }
        }
    }
}

TYPED_TEST(ParallelTyped, ReduceSum)
{
    const std::size_t n = 10000;
    double sum = -1.0;
    pspl::parallel_reduce(
            "test_sum", RangePolicy<TypeParam>(n),
            [](std::size_t i, double& acc) {
                acc += static_cast<double>(i);
            },
            pspl::Sum<double>(sum));
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TYPED_TEST(ParallelTyped, ReduceMaxMin)
{
    const std::size_t n = 1000;
    View1D<double> v("v", n);
    for (std::size_t i = 0; i < n; ++i) {
        v(i) = std::sin(static_cast<double>(i));
    }
    v(123) = 50.0;
    v(777) = -50.0;
    double mx = 0.0;
    double mn = 0.0;
    pspl::parallel_reduce(
            "test_max", RangePolicy<TypeParam>(n),
            [=](std::size_t i, double& acc) { acc = std::max(acc, v(i)); },
            pspl::Max<double>(mx));
    pspl::parallel_reduce(
            "test_min", RangePolicy<TypeParam>(n),
            [=](std::size_t i, double& acc) { acc = std::min(acc, v(i)); },
            pspl::Min<double>(mn));
    EXPECT_DOUBLE_EQ(mx, 50.0);
    EXPECT_DOUBLE_EQ(mn, -50.0);
}

TYPED_TEST(ParallelTyped, EmptyRangeIsNoop)
{
    int touched = 0;
    pspl::parallel_for("test_empty", RangePolicy<TypeParam>(0),
                       [&](std::size_t) { touched = 1; });
    EXPECT_EQ(touched, 0);
    double sum = 99.0;
    pspl::parallel_reduce(
            "test_empty_sum", RangePolicy<TypeParam>(0),
            [](std::size_t, double& acc) { acc += 1.0; },
            pspl::Sum<double>(sum));
    EXPECT_EQ(sum, 0.0);
}

TEST(ExecutionSpace, Names)
{
    EXPECT_STREQ(pspl::Serial::name(), "Serial");
    EXPECT_EQ(pspl::Serial::concurrency(), 1);
#if defined(PSPL_ENABLE_OPENMP)
    EXPECT_STREQ(pspl::OpenMP::name(), "OpenMP");
    EXPECT_GE(pspl::OpenMP::concurrency(), 1);
#endif
}

TEST(Profiling, KernelsRecordWhenEnabled)
{
    namespace prof = pspl::profiling;
    prof::clear();
    prof::set_enabled(true);
    pspl::parallel_for("profiled_kernel", std::size_t{100},
                       [](std::size_t) {});
    pspl::parallel_for("profiled_kernel", std::size_t{100},
                       [](std::size_t) {});
    prof::set_enabled(false);
    const auto stats = prof::stats_for("profiled_kernel");
    EXPECT_EQ(stats.count, 2u);
    EXPECT_GE(stats.total_seconds, 0.0);
    EXPECT_GE(stats.avg_seconds(), 0.0);
}

TEST(Profiling, DisabledRecordsNothing)
{
    namespace prof = pspl::profiling;
    prof::clear();
    prof::set_enabled(false);
    pspl::parallel_for("invisible_kernel", std::size_t{10},
                       [](std::size_t) {});
    EXPECT_EQ(prof::stats_for("invisible_kernel").count, 0u);
}

TEST(Profiling, ScopedRegionAccumulates)
{
    namespace prof = pspl::profiling;
    prof::clear();
    prof::set_enabled(true);
    {
        prof::ScopedRegion r("my_region");
        volatile double x = 0.0;
        for (int i = 0; i < 10000; ++i) {
            x = x + 1.0;
        }
    }
    prof::set_enabled(false);
    const auto stats = prof::stats_for("my_region");
    EXPECT_EQ(stats.count, 1u);
    EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(Profiling, MatchingAggregation)
{
    namespace prof = pspl::profiling;
    prof::clear();
    prof::record("pspl::a::kernel1", 1.0);
    prof::record("pspl::a::kernel2", 2.0);
    prof::record("pspl::b::kernel", 4.0);
    EXPECT_DOUBLE_EQ(prof::total_seconds_matching("pspl::a"), 3.0);
    EXPECT_DOUBLE_EQ(prof::total_seconds_matching("kernel"), 7.0);
    const auto snap = prof::snapshot();
    EXPECT_EQ(snap.size(), 3u);
    prof::clear();
    EXPECT_TRUE(prof::snapshot().empty());
}

} // namespace
