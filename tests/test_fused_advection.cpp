// Tests for the fused build->evaluate advection pipeline (AdvectionPlan):
// configuration resolution (config field, PSPL_ADVECT_FUSED toggle,
// coverage fallbacks), bitwise identity with the unfused Algorithm 2 path
// at Precision::Double across degrees / grids / builder versions /
// execution spaces, the shifted strip-evaluator entry points, and the
// zero-setup guarantee of the cached plan.
#include "advection/advection_plan.hpp"
#include "advection/semi_lagrangian.hpp"
#include "advection/semi_lagrangian_2d.hpp"
#include "bsplines/knots.hpp"
#include "parallel/arena.hpp"
#include "parallel/deep_copy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <string>
#include <tuple>

namespace {

using namespace pspl;
using advection::AdvectionPlan;
using advection::BatchedAdvection1D;
using advection::BatchedAdvection2D;
using advection::uniform_velocities;
using bsplines::BSplineBasis;
using core::BuilderVersion;

constexpr double two_pi = 2.0 * std::numbers::pi;

/// RAII setenv/unsetenv so env-sensitive tests cannot leak state (each
/// ctest entry is its own process, so no cross-test restore is needed).
class ScopedEnv
{
public:
    ScopedEnv(const char* name, const char* value) : m_name(name)
    {
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv() { ::unsetenv(m_name); }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    const char* m_name;
};

std::uint64_t ulp_distance(double a, double b)
{
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    std::memcpy(&ua, &a, sizeof(a));
    std::memcpy(&ub, &b, sizeof(b));
    const auto map = [](std::uint64_t u) {
        return (u & 0x8000000000000000ULL) != 0
                       ? 0x8000000000000000ULL - (u & 0x7fffffffffffffffULL)
                       : 0x8000000000000000ULL + u;
    };
    const std::uint64_t ma = map(ua);
    const std::uint64_t mb = map(ub);
    return ma > mb ? ma - mb : mb - ma;
}

double initial_profile(double x)
{
    return 1.0 + 0.5 * std::sin(two_pi * x)
           + 0.25 * std::cos(2.0 * two_pi * x);
}

View2D<double> initial_condition(const BatchedAdvection1D& adv)
{
    View2D<double> f("f", adv.nv(), adv.nx());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = initial_profile(adv.points()(i))
                      + 0.01 * static_cast<double>(j);
        }
    }
    return f;
}

/// The fused pipeline only covers the FP64 ladder; pin it so the identity
/// assertions hold regardless of the suite-wide PSPL_PRECISION leg, and
/// clear the toggle so Auto means the built-in default.
class FusedAdvection : public ::testing::Test
{
protected:
    ScopedEnv m_precision{"PSPL_PRECISION", "double"};
    ScopedEnv m_toggle{"PSPL_ADVECT_FUSED", nullptr};
};

TEST_F(FusedAdvection, ActiveByDefaultForDirectFusedDouble)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    BatchedAdvection1D adv(basis, uniform_velocities(5, -1.0, 1.0), 0.01);
    EXPECT_TRUE(adv.fused_active());
    ASSERT_TRUE(adv.plan().has_value());
    const AdvectionPlan& plan = *adv.plan();
    EXPECT_TRUE(plan.fusable());
    EXPECT_GE(plan.pack_width(), 1);
    EXPECT_GT(plan.tile_cols(), 0u);
    EXPECT_EQ(plan.tile_cols()
                      % static_cast<std::size_t>(plan.pack_width()),
              0u);
    EXPECT_GT(plan.slot_bytes(false), 0u);
    EXPECT_GT(plan.slot_bytes(true), plan.slot_bytes(false));
}

TEST_F(FusedAdvection, EnvToggleDisables)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    const auto v = uniform_velocities(5, -1.0, 1.0);
    {
        ScopedEnv off("PSPL_ADVECT_FUSED", "0");
        BatchedAdvection1D adv(basis, v, 0.01);
        EXPECT_FALSE(adv.fused_active());
    }
    {
        ScopedEnv off("PSPL_ADVECT_FUSED", "OFF");
        BatchedAdvection1D adv(basis, v, 0.01);
        EXPECT_FALSE(adv.fused_active());
    }
    {
        // Explicit On overrides the environment kill switch? No: On is a
        // code-level demand, the env is the operator's; config wins.
        ScopedEnv off("PSPL_ADVECT_FUSED", "off");
        BatchedAdvection1D::Config cfg;
        cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::On;
        BatchedAdvection1D adv(basis, v, 0.01, cfg);
        EXPECT_TRUE(adv.fused_active());
    }
}

TEST(FusedAdvectionParse, ToggleSpellings)
{
    EXPECT_TRUE(advection::fused_advect_enabled(nullptr));
    EXPECT_TRUE(advection::fused_advect_enabled(""));
    EXPECT_TRUE(advection::fused_advect_enabled("1"));
    EXPECT_TRUE(advection::fused_advect_enabled("on"));
    EXPECT_TRUE(advection::fused_advect_enabled("banana"));
    EXPECT_FALSE(advection::fused_advect_enabled("0"));
    EXPECT_FALSE(advection::fused_advect_enabled("off"));
    EXPECT_FALSE(advection::fused_advect_enabled("OFF"));
    EXPECT_FALSE(advection::fused_advect_enabled("False"));
    EXPECT_FALSE(advection::fused_advect_enabled("no"));
}

TEST_F(FusedAdvection, ConfigResolution)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    const auto v = uniform_velocities(5, -1.0, 1.0);
    {
        BatchedAdvection1D::Config cfg;
        cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::Off;
        BatchedAdvection1D adv(basis, v, 0.01, cfg);
        EXPECT_FALSE(adv.fused_active());
    }
    {
        // Auto yields to an explicit fuse_transpose ablation request.
        BatchedAdvection1D::Config cfg;
        cfg.fuse_transpose = true;
        BatchedAdvection1D adv(basis, v, 0.01, cfg);
        EXPECT_FALSE(adv.fused_active());
    }
    {
        // ... but an explicit On outranks it.
        BatchedAdvection1D::Config cfg;
        cfg.fuse_transpose = true;
        cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::On;
        BatchedAdvection1D adv(basis, v, 0.01, cfg);
        EXPECT_TRUE(adv.fused_active());
    }
    {
        // Baseline has no fused solve chain: transparent fallback.
        BatchedAdvection1D::Config cfg;
        cfg.version = BuilderVersion::Baseline;
        BatchedAdvection1D adv(basis, v, 0.01, cfg);
        EXPECT_FALSE(adv.fused_active());
    }
    {
        // The iterative method never fuses.
        BatchedAdvection1D::Config cfg;
        cfg.method = BatchedAdvection1D::Method::Iterative;
        BatchedAdvection1D adv(basis, v, 0.01, cfg);
        EXPECT_FALSE(adv.fused_active());
    }
}

TEST_F(FusedAdvection, ReducedPrecisionFallsBack)
{
    ScopedEnv mixed("PSPL_PRECISION", "mixed");
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    BatchedAdvection1D adv(basis, uniform_velocities(5, -1.0, 1.0), 0.01);
    EXPECT_FALSE(adv.fused_active());
    // The plan itself reports non-fusable for a reduced-precision builder.
    core::SplineBuilder builder(basis, BuilderVersion::FusedSpmv);
    AdvectionPlan plan(builder, core::SplineEvaluator(basis),
                       adv.points(), adv.velocities(), 0.01);
    EXPECT_FALSE(plan.fusable());
}

// ---------------------------------------------------------------------------
// Bitwise identity: fused vs unfused at Precision::Double must agree to the
// last bit -- same solve ladder, same evaluation arithmetic, only the data
// movement differs. Swept over degree x grid x fused builder version, with
// an explicit tile narrow enough to force multiple tiles plus a ragged
// tail, and three consecutive steps to compound any divergence.
// ---------------------------------------------------------------------------

enum class Grid { UniformPeriodic, NonUniformPeriodic, Clamped };

BSplineBasis make_basis(int degree, Grid grid, std::size_t n)
{
    switch (grid) {
    case Grid::UniformPeriodic:
        return BSplineBasis::uniform(degree, n, 0.0, 1.0);
    case Grid::NonUniformPeriodic:
        return BSplineBasis::non_uniform(
                degree, bsplines::stretched_breaks(n, 0.0, 1.0, 0.3));
    case Grid::Clamped:
    default:
        return BSplineBasis::clamped_uniform(degree, n, 0.0, 1.0);
    }
}

class FusedIdentityParam
    : public ::testing::TestWithParam<std::tuple<int, Grid, BuilderVersion>>
{
protected:
    ScopedEnv m_precision{"PSPL_PRECISION", "double"};
    ScopedEnv m_tile{"PSPL_TILE", "12"}; // ragged: rounds up to the pack
};

TEST_P(FusedIdentityParam, MatchesUnfusedBitwise)
{
    const auto [degree, grid, version] = GetParam();
    const std::size_t nx = 96;
    const auto basis = make_basis(degree, grid, nx);
    const auto v = uniform_velocities(37, -1.5, 2.0);
    const double dt = 0.013;

    BatchedAdvection1D::Config fused_cfg;
    fused_cfg.version = version;
    fused_cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::On;
    BatchedAdvection1D fused(basis, v, dt, fused_cfg);
    ASSERT_TRUE(fused.fused_active());

    BatchedAdvection1D::Config plain_cfg;
    plain_cfg.version = version;
    plain_cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::Off;
    BatchedAdvection1D plain(basis, v, dt, plain_cfg);
    ASSERT_FALSE(plain.fused_active());

    auto ff = initial_condition(fused);
    auto fp = clone(ff);
    for (int s = 0; s < 3; ++s) {
        fused.step(ff);
        plain.step(fp);
        for (std::size_t j = 0; j < fused.nv(); ++j) {
            for (std::size_t i = 0; i < fused.nx(); ++i) {
                ASSERT_EQ(ulp_distance(ff(j, i), fp(j, i)), 0u)
                        << "step " << s << " j=" << j << " i=" << i
                        << " fused=" << ff(j, i) << " plain=" << fp(j, i);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
        DegreesGridsVersions, FusedIdentityParam,
        ::testing::Combine(
                ::testing::Values(2, 3, 4, 5),
                ::testing::Values(Grid::UniformPeriodic,
                                  Grid::NonUniformPeriodic, Grid::Clamped),
                ::testing::Values(BuilderVersion::Fused,
                                  BuilderVersion::FusedSpmv,
                                  BuilderVersion::FusedSimd,
                                  BuilderVersion::FusedSpmvSimd)),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const Grid g = std::get<1>(info.param);
            const BuilderVersion v = std::get<2>(info.param);
            std::string name = "deg" + std::to_string(d);
            name += g == Grid::UniformPeriodic      ? "_uniform"
                    : g == Grid::NonUniformPeriodic ? "_nonuniform"
                                                    : "_clamped";
            switch (v) {
            case BuilderVersion::Fused:
                name += "_fused";
                break;
            case BuilderVersion::FusedSpmv:
                name += "_spmv";
                break;
            case BuilderVersion::FusedSimd:
                name += "_fused_simd";
                break;
            default:
                name += "_spmv_simd";
                break;
            }
            return name;
        });

// Execution spaces: the fused pipeline must produce the same bits on every
// backend -- each batch row is owned by exactly one tile, and the per-row
// arithmetic has no cross-thread reduction.
template <class Exec>
class FusedExecTyped : public ::testing::Test
{
protected:
    ScopedEnv m_precision{"PSPL_PRECISION", "double"};
    ScopedEnv m_tile{"PSPL_TILE", "8"};
};

#if defined(PSPL_ENABLE_OPENMP)
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::OpenMP, pspl::Threads>;
#else
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::Threads>;
#endif
TYPED_TEST_SUITE(FusedExecTyped, ExecSpaces);

TYPED_TEST(FusedExecTyped, MatchesSerialUnfusedBitwise)
{
    const auto basis = BSplineBasis::uniform(3, 80, 0.0, 1.0);
    const auto v = uniform_velocities(29, -2.0, 2.0);
    const double dt = 0.011;

    BatchedAdvection1D::Config fused_cfg;
    fused_cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::On;
    BatchedAdvection1D fused(basis, v, dt, fused_cfg);
    ASSERT_TRUE(fused.fused_active());

    BatchedAdvection1D::Config plain_cfg;
    plain_cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::Off;
    BatchedAdvection1D plain(basis, v, dt, plain_cfg);

    auto ff = initial_condition(fused);
    auto fp = clone(ff);
    fused.template step<TypeParam>(ff);
    plain.template step<pspl::Serial>(fp);
    for (std::size_t j = 0; j < fused.nv(); ++j) {
        for (std::size_t i = 0; i < fused.nx(); ++i) {
            ASSERT_EQ(ulp_distance(ff(j, i), fp(j, i)), 0u)
                    << "j=" << j << " i=" << i;
        }
    }
}

// ---------------------------------------------------------------------------
// 2-D: the fused Strang chain (zero physical transposes, advected tiles
// scattered through transposed views) must match the transpose-based chain
// bitwise -- the permutations are pure data movement.
// ---------------------------------------------------------------------------

TEST_F(FusedAdvection, TwoDFusedChainMatchesUnfusedBitwise)
{
    const std::size_t nx = 48;
    const std::size_t ny = 40;
    const auto basis_x = BSplineBasis::uniform(3, nx, 0.0, 1.0);
    const auto basis_y = BSplineBasis::uniform(3, ny, 0.0, 1.0);
    // Rigid rotation about the domain center.
    const double omega = two_pi;
    View1D<double> vx("vx", ny);
    View1D<double> vy("vy", nx);
    {
        BatchedAdvection2D probe(basis_x, basis_y, vx, vy, 0.0);
        for (std::size_t j = 0; j < ny; ++j) {
            vx(j) = -omega * (probe.points_y()(j) - 0.5);
        }
        for (std::size_t i = 0; i < nx; ++i) {
            vy(i) = omega * (probe.points_x()(i) - 0.5);
        }
    }
    const double dt = 0.004;

    BatchedAdvection2D::Config fused_cfg;
    fused_cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::On;
    BatchedAdvection2D fused(basis_x, basis_y, vx, vy, dt, fused_cfg);
    ASSERT_TRUE(fused.fused_active());

    BatchedAdvection2D::Config plain_cfg;
    plain_cfg.fuse_build_eval = BatchedAdvection1D::Config::Fuse::Off;
    BatchedAdvection2D plain(basis_x, basis_y, vx, vy, dt, plain_cfg);
    ASSERT_FALSE(plain.fused_active());

    View2D<double> ff("ff", ny, nx);
    for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
            const double x = fused.points_x()(i) - 0.5;
            const double y = fused.points_y()(j) - 0.5;
            ff(j, i) = std::exp(-40.0 * (x * x + y * y));
        }
    }
    auto fp = clone(ff);
    for (int s = 0; s < 2; ++s) {
        fused.step(ff);
        plain.step(fp);
        for (std::size_t j = 0; j < ny; ++j) {
            for (std::size_t i = 0; i < nx; ++i) {
                ASSERT_EQ(ulp_distance(ff(j, i), fp(j, i)), 0u)
                        << "step " << s << " j=" << j << " i=" << i;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-setup guarantee: once the first step sized the grow-only arena,
// repeated steps must not reallocate it.
// ---------------------------------------------------------------------------

TEST_F(FusedAdvection, RepeatedStepsDoNotReallocate)
{
    const auto basis = BSplineBasis::uniform(3, 64, 0.0, 1.0);
    BatchedAdvection1D adv(basis, uniform_velocities(33, -1.0, 1.0), 0.01);
    ASSERT_TRUE(adv.fused_active());
    auto f = initial_condition(adv);
    adv.step(f);
    const std::uint64_t gen = host_workspace_arena().generation();
    adv.step(f);
    adv.step(f);
    EXPECT_EQ(host_workspace_arena().generation(), gen);
}

// ---------------------------------------------------------------------------
// Shifted strip evaluation: the uniform-knot SIMD fast path must agree with
// the scalar evaluator to the bit, and the scalar path must equal direct
// per-point evaluation by construction.
// ---------------------------------------------------------------------------

TEST(EvaluateShifted, SimdFastPathMatchesScalarBitwise)
{
    for (int degree = 2; degree <= 5; ++degree) {
        const std::size_t n = 75; // odd: exercises the SIMD tail loop
        const auto basis = BSplineBasis::uniform(degree, n, 0.0, 1.0);
        core::SplineEvaluator simd_eval(basis, core::EvaluatorVersion::Simd);
        core::SplineEvaluator scalar_eval(basis,
                                          core::EvaluatorVersion::Scalar);
        ASSERT_TRUE(simd_eval.shifted_simd_supported());

        View1D<double> coeffs("coeffs", n);
        for (std::size_t i = 0; i < n; ++i) {
            coeffs(i) = std::sin(0.7 * static_cast<double>(i))
                        + 0.3 * std::cos(1.3 * static_cast<double>(i));
        }
        const auto pts = basis.interpolation_points();
        View1D<double> points("points", n);
        for (std::size_t i = 0; i < n; ++i) {
            points(i) = pts[i];
        }
        const double shift = 0.37;
        View1D<double> out_simd("out_simd", n);
        View1D<double> out_scalar("out_scalar", n);
        simd_eval.evaluate_shifted(points, shift, coeffs, &out_simd(0));
        scalar_eval.evaluate_shifted(points, shift, coeffs, &out_scalar(0));
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(ulp_distance(out_simd(i), out_scalar(i)), 0u)
                    << "degree " << degree << " i=" << i;
            // The scalar path is by construction the direct evaluation.
            ASSERT_EQ(out_scalar(i),
                      scalar_eval(points(i) - shift, coeffs));
        }
    }
}

TEST(EvaluateShifted, ClampedBasisUsesScalarPath)
{
    const auto basis = BSplineBasis::clamped_uniform(3, 32, 0.0, 1.0);
    core::SplineEvaluator eval(basis, core::EvaluatorVersion::Simd);
    EXPECT_FALSE(eval.shifted_simd_supported());
    View1D<double> coeffs("coeffs", basis.nbasis());
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        coeffs(i) = 1.0 + 0.1 * static_cast<double>(i);
    }
    const auto pts = basis.interpolation_points();
    View1D<double> points("points", basis.nbasis());
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        points(i) = pts[i];
    }
    // A shift large enough to push feet outside the domain: they clamp.
    const double shift = 0.2;
    View1D<double> out("out", basis.nbasis());
    eval.evaluate_shifted(points, shift, coeffs, &out(0));
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        ASSERT_EQ(out(i), eval(points(i) - shift, coeffs));
    }
}

} // namespace
