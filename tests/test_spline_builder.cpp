// Tests for the batched spline builder: the three optimization versions
// agree, the interpolation property holds, and accuracy converges at the
// expected order, across degrees / grids / execution spaces.
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "bsplines/knots.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using core::BuilderVersion;
using core::SplineBuilder;
using core::SplineEvaluator;

double test_function(double x)
{
    return std::sin(2.0 * std::numbers::pi * x)
           + 0.5 * std::cos(4.0 * std::numbers::pi * x + 0.3);
}

/// Fill a (n, batch) block with per-column phase-shifted samples of f at the
/// basis interpolation points.
View2D<double> sample_block(const BSplineBasis& basis, std::size_t batch)
{
    const auto pts = basis.interpolation_points();
    const std::size_t n = basis.nbasis();
    View2D<double> b("b", n, batch);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            b(i, j) = test_function(pts[i] + 0.01 * static_cast<double>(j));
        }
    }
    return b;
}

class BuilderParam
    : public ::testing::TestWithParam<std::tuple<int, bool, BuilderVersion>>
{
protected:
    BSplineBasis make_basis(std::size_t ncells) const
    {
        const auto [degree, uniform, version] = GetParam();
        (void)version;
        if (uniform) {
            return BSplineBasis::uniform(degree, ncells, 0.0, 1.0);
        }
        return BSplineBasis::non_uniform(
                degree, bsplines::stretched_breaks(ncells, 0.0, 1.0, 0.4));
    }
};

TEST_P(BuilderParam, InterpolationPropertyHolds)
{
    const auto [degree, uniform, version] = GetParam();
    (void)degree;
    (void)uniform;
    const auto basis = make_basis(40);
    const std::size_t batch = 7;
    SplineBuilder builder(basis, version);
    auto b = sample_block(basis, batch);
    const auto values = clone(b);

    builder.build_inplace(b);

    // Evaluating the spline at the interpolation points must reproduce the
    // input values: that is the defining property of interpolation.
    SplineEvaluator eval(basis);
    const auto pts = basis.interpolation_points();
    for (std::size_t j = 0; j < batch; ++j) {
        auto coeffs = subview(b, ALL, j);
        for (std::size_t i = 0; i < basis.nbasis(); ++i) {
            EXPECT_NEAR(eval(pts[i], coeffs), values(i, j), 1e-11)
                    << "i=" << i << " j=" << j;
        }
    }
}

TEST_P(BuilderParam, AllVersionsAgree)
{
    const auto [degree, uniform, version] = GetParam();
    (void)degree;
    (void)uniform;
    const auto basis = make_basis(64);
    const std::size_t batch = 5;
    const auto values = sample_block(basis, batch);

    SplineBuilder ref_builder(basis, BuilderVersion::Baseline);
    auto ref = clone(values);
    ref_builder.build_inplace(ref);

    SplineBuilder builder(basis, version);
    auto out = clone(values);
    builder.build_inplace(out);

    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_NEAR(out(i, j), ref(i, j), 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
        Versions, BuilderParam,
        ::testing::Combine(::testing::Values(3, 4, 5), ::testing::Bool(),
                           ::testing::Values(BuilderVersion::Baseline,
                                             BuilderVersion::Fused,
                                             BuilderVersion::FusedSpmv,
                                             BuilderVersion::FusedSimd,
                                             BuilderVersion::FusedSpmvSimd)),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const bool u = std::get<1>(info.param);
            const BuilderVersion v = std::get<2>(info.param);
            std::string name = "deg" + std::to_string(d)
                               + (u ? "_uniform_" : "_nonuniform_");
            switch (v) {
            case BuilderVersion::Baseline:
                name += "baseline";
                break;
            case BuilderVersion::Fused:
                name += "fused";
                break;
            case BuilderVersion::FusedSpmv:
                name += "spmv";
                break;
            case BuilderVersion::FusedSimd:
                name += "fused_simd";
                break;
            case BuilderVersion::FusedSpmvSimd:
                name += "spmv_simd";
                break;
            }
            return name;
        });

template <class Exec>
class BuilderExecTyped : public ::testing::Test
{
};

#if defined(PSPL_ENABLE_OPENMP)
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::OpenMP, pspl::Threads>;
#else
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::Threads>;
#endif
TYPED_TEST_SUITE(BuilderExecTyped, ExecSpaces);

TYPED_TEST(BuilderExecTyped, ExecutionSpacesProduceIdenticalResults)
{
    const auto basis = BSplineBasis::uniform(3, 48, 0.0, 1.0);
    const std::size_t batch = 33;
    SplineBuilder builder(basis, BuilderVersion::FusedSpmv);
    auto b1 = sample_block(basis, batch);
    auto b2 = clone(b1);
    builder.build_inplace<pspl::Serial>(b1);
    builder.build_inplace<TypeParam>(b2);
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_DOUBLE_EQ(b1(i, j), b2(i, j));
        }
    }
}

class ConvergenceParam : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(ConvergenceParam, OffGridErrorConvergesAtExpectedOrder)
{
    const auto [degree, uniform] = GetParam();
    // Interpolation error ~ h^{degree+1}: doubling n must shrink the error
    // by ~2^{degree+1}. Accept generous slack for the non-uniform grid.
    auto max_err = [&](std::size_t n) {
        const auto basis =
                uniform ? BSplineBasis::uniform(degree, n, 0.0, 1.0)
                        : BSplineBasis::non_uniform(
                                  degree,
                                  bsplines::stretched_breaks(n, 0.0, 1.0,
                                                             0.4));
        SplineBuilder builder(basis);
        View2D<double> b("b", n, 1);
        const auto pts = basis.interpolation_points();
        for (std::size_t i = 0; i < n; ++i) {
            b(i, 0) = test_function(pts[i]);
        }
        builder.build_inplace(b);
        SplineEvaluator eval(basis);
        auto coeffs = subview(b, ALL, std::size_t{0});
        double err = 0.0;
        for (int s = 0; s < 1000; ++s) {
            const double x = static_cast<double>(s) / 1000.0;
            err = std::max(err,
                           std::abs(eval(x, coeffs) - test_function(x)));
        }
        return err;
    };

    const double e1 = max_err(64);
    const double e2 = max_err(128);
    const double expected_ratio = std::pow(2.0, degree + 1);
    EXPECT_GT(e1 / e2, expected_ratio / 3.0)
            << "e1=" << e1 << " e2=" << e2;
}

INSTANTIATE_TEST_SUITE_P(Orders, ConvergenceParam,
                         ::testing::Combine(::testing::Values(3, 4, 5),
                                            ::testing::Bool()),
                         [](const auto& info) {
                             const int d = std::get<0>(info.param);
                             const bool u = std::get<1>(info.param);
                             return std::string("deg") + std::to_string(d)
                                    + (u ? "_uniform" : "_nonuniform");
                         });

TEST(SplineBuilder, RejectsWrongRhsExtent)
{
    const auto basis = BSplineBasis::uniform(3, 16, 0.0, 1.0);
    SplineBuilder builder(basis);
    View2D<double> b("b", 15, 2); // one row short
    EXPECT_DEATH(builder.build_inplace(b), "nbasis");
}

TEST(SplineBuilder, ConstantFunctionGivesConstantCoefficients)
{
    // Partition of unity: interpolating f=c yields all coefficients = c.
    const auto basis = BSplineBasis::uniform(4, 20, 0.0, 1.0);
    SplineBuilder builder(basis);
    View2D<double> b("b", 20, 3);
    pspl::deep_copy(b, 2.5);
    builder.build_inplace(b);
    for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(b(i, j), 2.5, 1e-12);
        }
    }
}

TEST(SplineBuilder, LargeBatchStress)
{
    const auto basis = BSplineBasis::uniform(3, 32, 0.0, 1.0);
    SplineBuilder builder(basis);
    const std::size_t batch = 2048;
    auto b = sample_block(basis, batch);
    const auto values = clone(b);
    builder.build_inplace(b);
    SplineEvaluator eval(basis);
    const auto pts = basis.interpolation_points();
    // Spot-check a few columns.
    for (const std::size_t j : {std::size_t{0}, std::size_t{1000},
                                std::size_t{2047}}) {
        auto coeffs = subview(b, ALL, j);
        for (std::size_t i = 0; i < 32; i += 7) {
            EXPECT_NEAR(eval(pts[i], coeffs), values(i, j), 1e-11);
        }
    }
}

TEST(SplineBuilder, Rank3BatchMatchesColumnwiseSolve)
{
    // A (n, b1, b2) block -- GYSELA keeps several batch dimensions -- must
    // produce exactly the same coefficients as solving each column alone.
    const auto basis = BSplineBasis::uniform(3, 24, 0.0, 1.0);
    SplineBuilder builder(basis);
    const std::size_t b1 = 4;
    const std::size_t b2 = 6;
    View3D<double> block("block", 24, b1, b2);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < 24; ++i) {
        for (std::size_t j = 0; j < b1; ++j) {
            for (std::size_t k = 0; k < b2; ++k) {
                block(i, j, k) = test_function(
                        pts[i] + 0.01 * static_cast<double>(j * b2 + k));
            }
        }
    }
    View2D<double> single("single", 24, 1);
    // Reference: solve one chosen column by itself.
    for (std::size_t i = 0; i < 24; ++i) {
        single(i, 0) = block(i, 2, 3);
    }
    builder.build_inplace(single);
    builder.build_inplace(block);
    for (std::size_t i = 0; i < 24; ++i) {
        EXPECT_DOUBLE_EQ(block(i, 2, 3), single(i, 0));
    }
}

TEST(SplineBuilder, VersionNames)
{
    EXPECT_STREQ(to_string(BuilderVersion::Baseline), "baseline");
    EXPECT_STREQ(to_string(BuilderVersion::Fused), "kernel-fusion");
    EXPECT_STREQ(to_string(BuilderVersion::FusedSpmv), "gemv->spmv");
    EXPECT_STREQ(to_string(BuilderVersion::FusedSimd), "kernel-fusion+simd");
    EXPECT_STREQ(to_string(BuilderVersion::FusedSpmvSimd), "gemv->spmv+simd");
}

} // namespace
