// Tile-resident batch pipeline tests: the TilePolicy cache model and its
// PSPL_TILE override, exact index coverage of the tile scheduler (tail
// tiles, tile >= batch, batch = 1), bitwise identity of the tiled solve
// against the untiled dispatch across degrees / grids / tile and pack
// widths, thread-count independence of the results, workspace-arena reuse
// semantics and -- under PSPL_CHECK -- the stale-slot-pointer death test.
#include "core/spline_builder.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <vector>

#if defined(PSPL_ENABLE_OPENMP)
#include <omp.h>
#endif

namespace {

using pspl::BatchTile;
using pspl::TilePolicy;
using pspl::View2D;
using pspl::WorkspaceArena;
using pspl::core::BuilderVersion;
using pspl::core::SplineBuilder;

// ---------------------------------------------------------------------------
// TilePolicy: cache model and environment override
// ---------------------------------------------------------------------------

/// RAII setenv/unsetenv so the from_env tests cannot leak state.
class ScopedEnv
{
public:
    ScopedEnv(const char* name, const char* value) : m_name(name)
    {
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv() { ::unsetenv(m_name); }

private:
    const char* m_name;
};

TEST(TilePolicy, EnvUnsetOrAutoSelectsCacheModel)
{
    {
        ScopedEnv env("PSPL_TILE", nullptr);
        EXPECT_EQ(TilePolicy::from_env().mode, TilePolicy::Mode::Auto);
    }
    {
        ScopedEnv env("PSPL_TILE", "auto");
        EXPECT_EQ(TilePolicy::from_env().mode, TilePolicy::Mode::Auto);
    }
    {
        ScopedEnv env("PSPL_TILE", "");
        EXPECT_EQ(TilePolicy::from_env().mode, TilePolicy::Mode::Auto);
    }
}

TEST(TilePolicy, EnvOffOrZeroDisablesTiling)
{
    for (const char* v : {"off", "0"}) {
        ScopedEnv env("PSPL_TILE", v);
        const TilePolicy p = TilePolicy::from_env();
        EXPECT_EQ(p.mode, TilePolicy::Mode::Off) << v;
        EXPECT_FALSE(p.tiled());
        EXPECT_EQ(p.tile_cols(1000, 4096, sizeof(double), 8), 0u);
    }
}

TEST(TilePolicy, EnvPositiveIntegerIsExplicitWidth)
{
    ScopedEnv env("PSPL_TILE", "96");
    const TilePolicy p = TilePolicy::from_env();
    EXPECT_EQ(p.mode, TilePolicy::Mode::Explicit);
    EXPECT_EQ(p.tile, 96u);
    EXPECT_EQ(p.describe(), "96");
}

TEST(TilePolicy, EnvGarbageFallsBackToAuto)
{
    ScopedEnv env("PSPL_TILE", "banana");
    EXPECT_EQ(TilePolicy::from_env().mode, TilePolicy::Mode::Auto);
}

TEST(TilePolicy, ExplicitWidthRoundsUpToPackMultiple)
{
    const TilePolicy p = TilePolicy::explicit_width(13);
    EXPECT_EQ(p.tile_cols(1000, 4096, sizeof(double), 8), 16u);
    EXPECT_EQ(p.tile_cols(1000, 4096, sizeof(double), 4), 16u);
    EXPECT_EQ(p.tile_cols(1000, 4096, sizeof(double), 1), 13u);
    // Requests below one pack are raised to a full pack.
    EXPECT_EQ(TilePolicy::explicit_width(1).tile_cols(1000, 4096, 8, 8), 8u);
}

TEST(TilePolicy, AutoModelIsPackMultipleAndShrinksWithRowCount)
{
    const TilePolicy p = TilePolicy::automatic();
    std::size_t prev = 0;
    // batch = 256 keeps every case below the L3 streaming guard.
    for (const std::size_t rows : {16384u, 4096u, 1024u, 256u}) {
        const std::size_t w = p.tile_cols(rows, 256, sizeof(double), 8);
        EXPECT_GE(w, 8u) << rows;
        EXPECT_EQ(w % 8, 0u) << rows;
        // Fewer rows per column -> more columns fit in L2.
        EXPECT_GE(w, prev) << rows;
        prev = w;
    }
    // The model stages about half of L2.
    const std::size_t rows = 1000;
    const std::size_t w = p.tile_cols(rows, 256, sizeof(double), 8);
    EXPECT_LE(w * rows * sizeof(double), pspl::l2_cache_bytes());
}

TEST(TilePolicy, AutoStreamingGuardFallsBackToUntiledBeyondL3)
{
    const TilePolicy p = TilePolicy::automatic();
    const std::size_t rows = 1000;
    // Largest batch whose whole (rows, batch) block still fits in L3.
    const std::size_t fit = pspl::l3_cache_bytes() / (rows * sizeof(double));
    EXPECT_GT(p.tile_cols(rows, fit, sizeof(double), 8), 0u);
    // One column past the last-level cache: the fused chain streams from
    // DRAM either way, so auto runs untiled instead of paying the staging
    // copies.
    EXPECT_EQ(p.tile_cols(rows, fit + 1, sizeof(double), 8), 0u);
    // Explicit requests are always honored (ablations need to measure the
    // streaming regime too).
    EXPECT_EQ(TilePolicy::explicit_width(128).tile_cols(rows, 2 * fit,
                                                        sizeof(double), 8),
              128u);
}

TEST(TilePolicy, FusedAdvectModelBudgetsStripsPlusFixedSet)
{
    const TilePolicy p = TilePolicy::automatic();
    const std::size_t rows = 1000;
    const std::size_t npts = 1000;
    const std::size_t l2 = pspl::l2_cache_bytes();

    // Pack multiple, at least one pack, and the two strips (rows + npts
    // doubles per column) fit the modeled half-L2 budget.
    const std::size_t w = p.fused_advect_tile_cols(rows, npts, 100000, 8, 0);
    EXPECT_GE(w, 8u);
    EXPECT_EQ(w % 8, 0u);
    EXPECT_LE(w * (rows + npts) * sizeof(double), l2 / 2);

    // A larger fixed working set (Schur factors + points) can only shrink
    // the strip tile, and the quarter-L2 carve cap keeps even absurd
    // factor footprints from starving it below one pack.
    const std::size_t w_fixed =
            p.fused_advect_tile_cols(rows, npts, 100000, 8, l2 / 8);
    EXPECT_LE(w_fixed, w);
    EXPECT_GE(p.fused_advect_tile_cols(rows, npts, 100000, 8, 16 * l2), 8u);

    // No streaming guard: unlike tile_cols, batches way past L3 still get
    // a nonzero width (the fused pipeline must stage).
    EXPECT_GT(p.fused_advect_tile_cols(rows, npts, 1u << 24, 8, 0), 0u);
}

TEST(TilePolicy, FusedAdvectModelRoundsAndClamps)
{
    // Explicit requests round up to a pack multiple.
    EXPECT_EQ(TilePolicy::explicit_width(13).fused_advect_tile_cols(
                      1000, 1000, 100000, 8, 0),
              16u);
    EXPECT_EQ(TilePolicy::explicit_width(13).fused_advect_tile_cols(
                      1000, 1000, 100000, 1, 0),
              13u);
    // The tile never exceeds the batch rounded up to a whole pack...
    EXPECT_EQ(TilePolicy::explicit_width(4096).fused_advect_tile_cols(
                      1000, 1000, 37, 8, 0),
              40u);
    // ...and tiny strips are still bounded by the staging cap.
    const std::size_t cap_w =
            TilePolicy::automatic().fused_advect_tile_cols(1, 1, 1u << 24, 8,
                                                           0);
    EXPECT_LE(cap_w, 4096u);
    EXPECT_EQ(cap_w % 8, 0u);
}

// ---------------------------------------------------------------------------
// for_each_batch_tile: exact index coverage
// ---------------------------------------------------------------------------

/// Runs the scheduler serially and asserts every batch index is visited
/// exactly once, tiles are ordered, and widths match the request.
void expect_exact_coverage(std::size_t batch, std::size_t tile)
{
    std::vector<int> hits(batch, 0);
    std::vector<BatchTile> tiles;
    pspl::for_each_batch_tile(
            "test_tile_coverage", pspl::RangePolicy<pspl::Serial>(batch),
            tile, [&](const BatchTile& t) {
                tiles.push_back(t);
                for (std::size_t j = t.begin; j < t.end; ++j) {
                    hits[j] += 1;
                }
            });
    for (std::size_t j = 0; j < batch; ++j) {
        ASSERT_EQ(hits[j], 1) << "batch index " << j << " (batch=" << batch
                              << ", tile=" << tile << ")";
    }
    ASSERT_EQ(tiles.size(), (batch + tile - 1) / tile);
    for (const BatchTile& t : tiles) {
        EXPECT_EQ(t.begin, t.index * tile);
        const bool last = t.index + 1 == tiles.size();
        EXPECT_EQ(t.cols(), last ? batch - t.begin : tile);
    }
}

TEST(BatchTileScheduler, CoversEveryIndexOnce)
{
    expect_exact_coverage(/*batch=*/4096, /*tile=*/128);
    expect_exact_coverage(/*batch=*/1000, /*tile=*/96); // ragged tail
}

TEST(BatchTileScheduler, TailTileNarrowerThanPackWidth)
{
    // 37 = 4 * 8 + 5: the last tile has 5 columns, narrower than a W=8
    // pack -- the masked-lane path in the staged gather/scatter.
    expect_exact_coverage(/*batch=*/37, /*tile=*/8);
}

TEST(BatchTileScheduler, TileAtLeastBatchYieldsSingleTile)
{
    expect_exact_coverage(/*batch=*/64, /*tile=*/64);
    expect_exact_coverage(/*batch=*/64, /*tile=*/4096);
}

TEST(BatchTileScheduler, SingleColumnBatch)
{
    expect_exact_coverage(/*batch=*/1, /*tile=*/128);
    expect_exact_coverage(/*batch=*/1, /*tile=*/1);
}

// ---------------------------------------------------------------------------
// Bitwise identity: tiled solve == untiled solve
// ---------------------------------------------------------------------------

pspl::bsplines::BSplineBasis make_basis(int degree, bool uniform,
                                        std::size_t ncells)
{
    if (uniform) {
        return pspl::bsplines::BSplineBasis::uniform(degree, ncells, 0.0,
                                                     1.0);
    }
    std::vector<double> breaks(ncells + 1);
    for (std::size_t i = 0; i <= ncells; ++i) {
        const double u = static_cast<double>(i) / static_cast<double>(ncells);
        breaks[i] = u * u * (3.0 - 2.0 * u); // smoothstep stretching
    }
    return pspl::bsplines::BSplineBasis::non_uniform(degree, breaks);
}

void fill(const pspl::bsplines::BSplineBasis& basis, const View2D<double>& b)
{
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < b.extent(0); ++i) {
        for (std::size_t j = 0; j < b.extent(1); ++j) {
            b(i, j) = std::sin(6.2831853071795865 * pts[i])
                      + 0.3 * std::cos(23.0 * pts[i] + 0.7)
                      + 1e-3 * static_cast<double>((i * 131 + j * 17) % 101);
        }
    }
}

/// Bitwise comparison (memcmp of the doubles): the tiled pipeline promises
/// identity, not closeness.
void expect_bitwise_equal(const View2D<double>& a, const View2D<double>& b)
{
    ASSERT_EQ(a.extent(0), b.extent(0));
    ASSERT_EQ(a.extent(1), b.extent(1));
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        ASSERT_EQ(0, std::memcmp(&a(i, 0), &b(i, 0),
                                 a.extent(1) * sizeof(double)))
                << "row " << i << " differs bitwise";
    }
}

void run_identity_case(int degree, bool uniform, std::size_t ncells,
                       std::size_t batch, BuilderVersion version,
                       const TilePolicy& policy)
{
    const auto basis = make_basis(degree, uniform, ncells);
    SplineBuilder builder(basis, version);
    const std::size_t n = basis.nbasis();

    View2D<double> untiled("untiled", n, batch);
    fill(basis, untiled);
    pspl::core::schur_solve_batched(builder.solver().device_data(), untiled,
                                    version, TilePolicy::off());

    View2D<double> tiled("tiled", n, batch);
    fill(basis, tiled);
    pspl::core::schur_solve_batched(builder.solver().device_data(), tiled,
                                    version, policy);

    expect_bitwise_equal(untiled, tiled);
}

TEST(TiledSolveIdentity, SimdAcrossTileWidthsAndDegrees)
{
    for (const int degree : {2, 3, 5}) {
        for (const std::size_t tile : {8u, 16u, 56u, 4096u}) {
            run_identity_case(degree, /*uniform=*/true, /*ncells=*/173,
                              /*batch=*/389, BuilderVersion::FusedSpmvSimd,
                              TilePolicy::explicit_width(tile));
        }
    }
}

TEST(TiledSolveIdentity, NonUniformGridAndGemvChain)
{
    run_identity_case(/*degree=*/3, /*uniform=*/false, /*ncells=*/97,
                      /*batch=*/211, BuilderVersion::FusedSimd,
                      TilePolicy::explicit_width(32));
    run_identity_case(/*degree=*/4, /*uniform=*/false, /*ncells=*/64,
                      /*batch=*/130, BuilderVersion::FusedSpmvSimd,
                      TilePolicy::automatic());
}

TEST(TiledSolveIdentity, ScalarChainsAreTiledIdentically)
{
    for (const auto version :
         {BuilderVersion::Fused, BuilderVersion::FusedSpmv}) {
        run_identity_case(/*degree=*/3, /*uniform=*/true, /*ncells=*/120,
                          /*batch=*/77, version,
                          TilePolicy::explicit_width(16));
    }
}

TEST(TiledSolveIdentity, BatchOfOneAndBatchBelowPackWidth)
{
    for (const std::size_t batch : {1u, 5u}) {
        run_identity_case(/*degree=*/3, /*uniform=*/true, /*ncells=*/50,
                          batch, BuilderVersion::FusedSpmvSimd,
                          TilePolicy::explicit_width(128));
    }
}

TEST(TiledSolveIdentity, BuilderHonorsTilePolicyOverride)
{
    const auto basis = make_basis(3, true, 150);
    const std::size_t n = basis.nbasis();
    constexpr std::size_t batch = 333;

    SplineBuilder untiled_builder(basis, BuilderVersion::FusedSpmvSimd);
    untiled_builder.set_tile_policy(TilePolicy::off());
    View2D<double> a("a", n, batch);
    fill(basis, a);
    untiled_builder.build_inplace(a);

    SplineBuilder tiled_builder(basis, BuilderVersion::FusedSpmvSimd);
    tiled_builder.set_tile_policy(TilePolicy::explicit_width(64));
    View2D<double> b("b", n, batch);
    fill(basis, b);
    tiled_builder.build_inplace(b);

    expect_bitwise_equal(a, b);
}

#if defined(PSPL_ENABLE_OPENMP)
TEST(TiledSolveIdentity, ThreadCountDoesNotChangeBits)
{
    const auto basis = make_basis(3, true, 200);
    SplineBuilder builder(basis, BuilderVersion::FusedSpmvSimd);
    const std::size_t n = basis.nbasis();
    constexpr std::size_t batch = 1031; // prime: ragged tiles and tails

    const int saved = omp_get_max_threads();
    omp_set_num_threads(1);
    View2D<double> one("one_thread", n, batch);
    fill(basis, one);
    pspl::core::schur_solve_batched_simd<8>(builder.solver().device_data(),
                                            one, /*use_spmv=*/true,
                                            TilePolicy::explicit_width(64));

    omp_set_num_threads(8);
    View2D<double> eight("eight_threads", n, batch);
    fill(basis, eight);
    pspl::core::schur_solve_batched_simd<8>(builder.solver().device_data(),
                                            eight, /*use_spmv=*/true,
                                            TilePolicy::explicit_width(64));
    omp_set_num_threads(saved);

    expect_bitwise_equal(one, eight);
}
#endif

// ---------------------------------------------------------------------------
// WorkspaceArena: reuse, growth, generations
// ---------------------------------------------------------------------------

TEST(WorkspaceArenaTest, ReserveIsGrowOnlyAndReuseKeepsGeneration)
{
    WorkspaceArena arena;
    EXPECT_EQ(arena.size_bytes(), 0u);

    arena.reserve(/*slots=*/4, /*bytes_per_slot=*/1000);
    const std::uint64_t gen = arena.generation();
    std::byte* base = arena.data();
    EXPECT_GE(arena.slot_stride_bytes(), 1000u);
    EXPECT_EQ(arena.slot_stride_bytes() % 128, 0u); // slot alignment
    EXPECT_EQ(arena.slots(), 4u);

    // Equal and smaller requests must not reallocate.
    arena.reserve(4, 1000);
    arena.reserve(2, 64);
    EXPECT_EQ(arena.generation(), gen);
    EXPECT_EQ(arena.data(), base);

    // Mixed-shape callers keep the maxima of both dimensions.
    arena.reserve(2, 5000);
    EXPECT_GE(arena.slot_stride_bytes(), 5000u);
    EXPECT_EQ(arena.slots(), 4u);
    EXPECT_GT(arena.generation(), gen);
}

TEST(WorkspaceArenaTest, SlotsAreDisjointAndWritable)
{
    WorkspaceArena arena;
    arena.reserve(3, 256 * sizeof(double));
    for (int rank = 0; rank < 3; ++rank) {
        double* s = arena.slot<double>(rank);
        for (int i = 0; i < 256; ++i) {
            s[i] = rank * 1000.0 + i;
        }
    }
    for (int rank = 0; rank < 3; ++rank) {
        const double* s = arena.slot<double>(rank);
        EXPECT_EQ(s[0], rank * 1000.0);
        EXPECT_EQ(s[255], rank * 1000.0 + 255);
    }
}

TEST(WorkspaceArenaTest, HostArenaIsPersistentAcrossCalls)
{
    WorkspaceArena& arena = pspl::host_workspace_arena();
    arena.reserve(1, 4096);
    const std::uint64_t gen = arena.generation();
    std::byte* base = arena.data();
    // A second solve-sized request of the same shape is free: same memory,
    // same generation, no allocation churn in steady state.
    for (int i = 0; i < 16; ++i) {
        pspl::host_workspace_arena().reserve(1, 4096);
    }
    EXPECT_EQ(pspl::host_workspace_arena().generation(), gen);
    EXPECT_EQ(pspl::host_workspace_arena().data(), base);
}

// ---------------------------------------------------------------------------
// NUMA first-touch Views
// ---------------------------------------------------------------------------

TEST(FirstTouchView, IsZeroInitializedLikeTheSerialPath)
{
    pspl::View1D<double> ft(pspl::FirstTouch, "ft_probe", 10000);
    for (std::size_t i = 0; i < ft.extent(0); ++i) {
        ASSERT_EQ(ft(i), 0.0) << i;
    }
    pspl::View2D<float> ft2(pspl::FirstTouch, "ft_probe2", 33, 97);
    for (std::size_t i = 0; i < 33; ++i) {
        for (std::size_t j = 0; j < 97; ++j) {
            ASSERT_EQ(ft2(i, j), 0.0f);
        }
    }
}

// ---------------------------------------------------------------------------
// PSPL_CHECK: stale slot pointers are use-after-free with provenance
// ---------------------------------------------------------------------------

#if defined(PSPL_CHECK)

void seeded_stale_slot_access()
{
    WorkspaceArena arena;
    arena.reserve(1, 512);
    double* stale = arena.slot<double>(0);
    stale[0] = 1.0; // valid while the generation holds
    arena.reserve(1, 1 << 20); // growth reallocates, tombstones the old block
    // The cached pointer now targets the freed backing View; the registry
    // must abort this write with the arena's label.
    pspl::View<double, 1, pspl::LayoutRight> dangle(stale, {4});
    dangle(0) = 2.0;
}

TEST(WorkspaceArenaDeathTest, StaleSlotPointerAbortsUnderCheck)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(seeded_stale_slot_access(),
                 "use-after-free.*pspl::workspace_arena");
}

#else

TEST(WorkspaceArenaDeathTest, InstrumentationCompiledOut)
{
    GTEST_SKIP() << "PSPL_CHECK=OFF: arena lifetime checks not compiled in";
}

#endif

} // namespace
