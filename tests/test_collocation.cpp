// Tests for the collocation matrix assembly: Fig. 1 sparsity, row sums,
// and the Table I matrix classes recovered by structure analysis.
#include "bsplines/collocation.hpp"
#include "bsplines/knots.hpp"
#include "core/matrix_structure.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace {

using pspl::View2D;
using pspl::bsplines::BSplineBasis;
using pspl::bsplines::collocation_matrix;
using pspl::bsplines::sparsity_pattern;
using pspl::bsplines::stretched_breaks;
using pspl::core::analyze_structure;
using pspl::core::SolverKind;

TEST(Collocation, RowsSumToOne)
{
    // Partition of unity evaluated at the interpolation points: every row
    // of A sums to exactly 1.
    for (const int degree : {3, 4, 5}) {
        const auto basis = BSplineBasis::uniform(degree, 24, 0.0, 1.0);
        const auto a = collocation_matrix(basis);
        for (std::size_t i = 0; i < a.extent(0); ++i) {
            double sum = 0.0;
            for (std::size_t j = 0; j < a.extent(1); ++j) {
                sum += a(i, j);
            }
            EXPECT_NEAR(sum, 1.0, 1e-12) << "degree " << degree << " row " << i;
        }
    }
}

TEST(Collocation, UniformCubicIsTridiagonalPlusCorners)
{
    const std::size_t n = 20;
    const auto basis = BSplineBasis::uniform(3, n, 0.0, 1.0);
    const auto a = collocation_matrix(basis);
    // Each row has exactly 3 nonzeros: 1/6, 2/3, 1/6 cyclically.
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t nnz = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (std::abs(a(i, j)) > 1e-14) {
                ++nnz;
                EXPECT_TRUE(std::abs(a(i, j) - 1.0 / 6.0) < 1e-12
                            || std::abs(a(i, j) - 2.0 / 3.0) < 1e-12)
                        << a(i, j);
            }
        }
        EXPECT_EQ(nnz, 3u) << "row " << i;
    }
    // Wrap-around corners must exist (periodicity).
    const auto s = analyze_structure(a);
    EXPECT_GE(s.corner_width, 1u);
}

TEST(Collocation, PatternStringShape)
{
    const auto basis = BSplineBasis::uniform(3, 8, 0.0, 1.0);
    const auto a = collocation_matrix(basis);
    const auto pat = sparsity_pattern(a);
    // 8 rows of 8 chars + newline each.
    EXPECT_EQ(pat.size(), 8u * 9u);
    std::size_t stars = 0;
    for (const char c : pat) {
        stars += (c == '*');
    }
    EXPECT_EQ(stars, 24u); // 3 nonzeros per row
}

class TableIParam
    : public ::testing::TestWithParam<std::tuple<int, bool, SolverKind>>
{
};

TEST_P(TableIParam, StructureAnalysisReproducesTableI)
{
    const auto [degree, uniform, expected] = GetParam();
    const std::size_t n = 64;
    const auto basis = uniform
                               ? BSplineBasis::uniform(degree, n, 0.0, 1.0)
                               : BSplineBasis::non_uniform(
                                         degree,
                                         stretched_breaks(n, 0.0, 1.0, 0.5));
    const auto a = collocation_matrix(basis);
    const auto s = analyze_structure(a);
    EXPECT_EQ(s.recommended, expected)
            << "degree " << degree << (uniform ? " uniform" : " non-uniform")
            << " got " << to_string(s.recommended);
    EXPECT_GT(s.corner_width, 0u);
    EXPECT_LE(s.corner_width, static_cast<std::size_t>(degree));
}

INSTANTIATE_TEST_SUITE_P(
        TableI, TableIParam,
        ::testing::Values(
                // Table I: uniform degree 3 -> PDS tridiagonal (pttrs)
                std::make_tuple(3, true, SolverKind::PTTRS),
                // uniform degree 4, 5 -> PDS banded (pbtrs)
                std::make_tuple(4, true, SolverKind::PBTRS),
                std::make_tuple(5, true, SolverKind::PBTRS),
                // non-uniform degrees -> general banded (gbtrs)
                std::make_tuple(3, false, SolverKind::GBTRS),
                std::make_tuple(4, false, SolverKind::GBTRS),
                std::make_tuple(5, false, SolverKind::GBTRS)),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const bool u = std::get<1>(info.param);
            (void)std::get<2>(info.param);
            return std::string("deg") + std::to_string(d)
                   + (u ? "_uniform" : "_nonuniform");
        });

TEST(Collocation, CustomPointsOverload)
{
    const auto basis = BSplineBasis::uniform(3, 12, 0.0, 1.0);
    const auto pts = basis.interpolation_points();
    const auto a1 = collocation_matrix(basis);
    const auto a2 = collocation_matrix(basis, pts);
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 12; ++j) {
            EXPECT_DOUBLE_EQ(a1(i, j), a2(i, j));
        }
    }
}

TEST(Collocation, MatrixIsWellConditionedDiagonallyDominantish)
{
    // The spline interpolation matrix is well conditioned (paper cites
    // [33]); sanity-check that the diagonal entry dominates its row for the
    // uniform cubic case.
    const auto basis = BSplineBasis::uniform(3, 32, 0.0, 1.0);
    const auto a = collocation_matrix(basis);
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        double diag = 0.0;
        double off = 0.0;
        for (std::size_t j = 0; j < a.extent(1); ++j) {
            // The interpolation point of row i collocates basis j=i+shift
            // cyclically; find the max entry instead of assuming the shift.
            diag = std::max(diag, std::abs(a(i, j)));
            off += std::abs(a(i, j));
        }
        off -= diag;
        EXPECT_GT(diag, off);
    }
}

} // namespace
