// Tests for the spline evaluator: exactness, periodicity, derivatives and
// the batched evaluation path.
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using core::SplineBuilder;
using core::SplineEvaluator;

constexpr double two_pi = 2.0 * std::numbers::pi;

/// Build the coefficient column interpolating f on the given basis.
View2D<double> build_coeffs(const BSplineBasis& basis, double (*f)(double))
{
    const std::size_t n = basis.nbasis();
    View2D<double> b("b", n, 1);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        b(i, 0) = f(pts[i]);
    }
    SplineBuilder builder(basis);
    builder.build_inplace(b);
    return b;
}

double sin1(double x)
{
    return std::sin(two_pi * x);
}

TEST(Evaluator, ConstantSplineIsExactEverywhere)
{
    const auto basis = BSplineBasis::uniform(5, 16, 0.0, 1.0);
    View1D<double> coeffs("c", 16);
    deep_copy(coeffs, 3.25);
    SplineEvaluator eval(basis);
    for (int s = 0; s < 100; ++s) {
        const double x = 0.013 * static_cast<double>(s);
        EXPECT_NEAR(eval(x, coeffs), 3.25, 1e-13);
    }
}

TEST(Evaluator, PeriodicityOfEvaluation)
{
    const auto basis = BSplineBasis::uniform(3, 32, 0.0, 1.0);
    const auto b = build_coeffs(basis, sin1);
    auto coeffs = subview(b, ALL, std::size_t{0});
    SplineEvaluator eval(basis);
    for (int s = 0; s < 50; ++s) {
        const double x = 0.02 * static_cast<double>(s) + 0.001;
        EXPECT_NEAR(eval(x, coeffs), eval(x + 1.0, coeffs), 1e-13);
        EXPECT_NEAR(eval(x, coeffs), eval(x - 2.0, coeffs), 1e-12);
    }
}

TEST(Evaluator, InterpolatesSmoothFunctionAccurately)
{
    const auto basis = BSplineBasis::uniform(5, 64, 0.0, 1.0);
    const auto b = build_coeffs(basis, sin1);
    auto coeffs = subview(b, ALL, std::size_t{0});
    SplineEvaluator eval(basis);
    for (int s = 0; s < 500; ++s) {
        const double x = static_cast<double>(s) / 500.0;
        EXPECT_NEAR(eval(x, coeffs), sin1(x), 1e-8);
    }
}

TEST(Evaluator, DerivativeOfSinIsCos)
{
    const auto basis = BSplineBasis::uniform(5, 128, 0.0, 1.0);
    const auto b = build_coeffs(basis, sin1);
    auto coeffs = subview(b, ALL, std::size_t{0});
    SplineEvaluator eval(basis);
    for (int s = 0; s < 200; ++s) {
        const double x = static_cast<double>(s) / 200.0;
        EXPECT_NEAR(eval.deriv(x, coeffs), two_pi * std::cos(two_pi * x),
                    1e-5);
    }
}

TEST(Evaluator, DerivativeOfConstantIsZero)
{
    const auto basis = BSplineBasis::uniform(3, 20, 0.0, 1.0);
    View1D<double> coeffs("c", 20);
    deep_copy(coeffs, 7.0);
    SplineEvaluator eval(basis);
    for (int s = 0; s < 60; ++s) {
        EXPECT_NEAR(eval.deriv(0.017 * static_cast<double>(s), coeffs), 0.0,
                    1e-11);
    }
}

TEST(Evaluator, EvaluateManyMatchesPointwise)
{
    const auto basis = BSplineBasis::uniform(3, 24, 0.0, 1.0);
    const auto b = build_coeffs(basis, sin1);
    View1D<double> coeffs("c", 24);
    for (std::size_t i = 0; i < 24; ++i) {
        coeffs(i) = b(i, 0);
    }
    SplineEvaluator eval(basis);
    std::vector<double> pts;
    for (int s = 0; s < 37; ++s) {
        pts.push_back(0.027 * static_cast<double>(s));
    }
    const auto many = eval.evaluate_many(pts, coeffs);
    ASSERT_EQ(many.size(), pts.size());
    for (std::size_t p = 0; p < pts.size(); ++p) {
        EXPECT_DOUBLE_EQ(many[p], eval(pts[p], coeffs));
    }
}

template <class Exec>
class EvaluatorExecTyped : public ::testing::Test
{
};

#if defined(PSPL_ENABLE_OPENMP)
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::OpenMP, pspl::Threads>;
#else
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::Threads>;
#endif
TYPED_TEST_SUITE(EvaluatorExecTyped, ExecSpaces);

TYPED_TEST(EvaluatorExecTyped, BatchedEvaluationMatchesScalarPath)
{
    const auto basis = BSplineBasis::uniform(4, 30, 0.0, 1.0);
    const std::size_t n = basis.nbasis();
    const std::size_t batch = 9;
    View2D<double> values("v", n, batch);
    const auto pts_v = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            values(i, j) = std::sin(two_pi * pts_v[i]
                                    + 0.2 * static_cast<double>(j));
        }
    }
    SplineBuilder builder(basis);
    builder.build_inplace(values);

    const std::size_t npts = 51;
    View1D<double> query("q", npts);
    for (std::size_t p = 0; p < npts; ++p) {
        query(p) = static_cast<double>(p) / static_cast<double>(npts) + 0.003;
    }
    View2D<double> out("out", npts, batch);
    SplineEvaluator eval(basis);
    eval.evaluate_batched<TypeParam>(query, values, out);

    for (std::size_t j = 0; j < batch; ++j) {
        auto coeffs = subview(values, ALL, j);
        for (std::size_t p = 0; p < npts; ++p) {
            EXPECT_NEAR(out(p, j), eval(query(p), coeffs), 1e-14);
        }
    }
}

TEST(Evaluator, SmoothnessAcrossKnots)
{
    // A degree-p spline is C^{p-1}: the first derivative must be continuous
    // across break points.
    const auto basis = BSplineBasis::uniform(3, 16, 0.0, 1.0);
    const auto b = build_coeffs(basis, sin1);
    auto coeffs = subview(b, ALL, std::size_t{0});
    SplineEvaluator eval(basis);
    const double h = 1e-9;
    for (std::size_t c = 0; c <= 16; ++c) {
        const double xk = basis.break_point(std::min<std::size_t>(c, 15));
        const double left = eval.deriv(xk - h, coeffs);
        const double right = eval.deriv(xk + h, coeffs);
        EXPECT_NEAR(left, right, 1e-5);
    }
}

} // namespace
