// Misuse: slicing a rank-2 block with a single slicer (forgot the batch
// dimension). Every dimension must be sliced explicitly.
// EXPECT: subview needs one slicer per dimension
#include "parallel/subview.hpp"

void misuse(const pspl::View2D<double>& block)
{
    auto row = pspl::subview(block, pspl::ALL);
    (void)row;
}
