// Misuse: a rank-5 View. The library's indexing, subview, and dispatch
// vocabulary is written for ranks 1..4 (the paper's data shapes).
// EXPECT: View supports rank 1..4
#include "parallel/view.hpp"

void misuse()
{
    pspl::View<double, 5> v("too_deep", 2, 2, 2, 2, 2);
    (void)v;
}
