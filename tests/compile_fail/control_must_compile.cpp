// Positive control: one TU exercising every constrained entry point
// *correctly*. If this stops compiling, the harness flags or include paths
// are broken and every compile-fail "pass" in this directory is suspect.
// EXPECT-OK
#include "batched/batched.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/subview.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"

void control()
{
    pspl::View2D<double> block("block", 4, 8);
    pspl::View2D<double> copy("copy", 4, 8);
    pspl::deep_copy(copy, block);

    auto col = pspl::subview(block, pspl::ALL, std::size_t{0});
    auto window = pspl::subview(block, std::pair<std::size_t, std::size_t>{1, 3},
                                pspl::ALL);
    auto flipped = pspl::transposed_view(block);
    (void)window;
    (void)flipped;

    pspl::parallel_for("range", std::size_t{8}, [](std::size_t) {});
    pspl::parallel_for("md2", pspl::MDRangePolicy<2>({4, 8}),
                       [](std::size_t, std::size_t) {});
    pspl::parallel_for("md3", pspl::MDRangePolicy<3>({2, 4, 8}),
                       [](std::size_t, std::size_t, std::size_t) {});

    double total = 0.0;
    pspl::parallel_reduce("sum", std::size_t{8},
                          [](std::size_t, double& acc) { acc += 1.0; },
                          pspl::Sum<double>(total));

    pspl::for_each_batch_simd<4>("chunks", std::size_t{8},
                                 [](const pspl::BatchChunk<4>&) {});
    pspl::for_each_batch_tile("tiles", std::size_t{8}, std::size_t{4},
                              [](const pspl::BatchTile&) {});

    // Widening scalar mixes are fine; only float-narrowing is rejected.
    pspl::simd<double, 4> p(1.0f);
    p = p * 2 + 1.0f;

    pspl::View1D<double> d("d", 4);
    pspl::View1D<double> e("e", 3);
    (void)pspl::batched::SerialPttrs<>::invoke(d, e, col);

    pspl::View2D<double> lu("lu", 4, 4);
    pspl::View1D<int> ipiv("ipiv", 4);
    (void)pspl::batched::SerialGetrs<>::invoke(lu, ipiv, col);
}
