// Misuse: a double literal in float-pack arithmetic (the classic generic-
// kernel bug: `x * 2.0` where x is FP32). The scalar operand deduces its
// own type and the broadcast constructor rejects the narrowing.
// EXPECT: simd broadcast narrows a floating-point scalar
#include "parallel/simd.hpp"

pspl::simd<float, 8> misuse(const pspl::simd<float, 8>& x)
{
    return x * 2.0;
}
