// Misuse: a mutable lambda as a parallel_for body. Bodies are copied into
// the parallel region (value-capture contract), so per-call mutable state
// would be silently lost -- the dispatch requires const-invocability.
// EXPECT: invocable as f(std::size_t) on a const functor
#include "parallel/parallel.hpp"

void misuse()
{
    pspl::parallel_for("mutable_body", std::size_t{16},
                       [count = 0](std::size_t) mutable { ++count; });
}
