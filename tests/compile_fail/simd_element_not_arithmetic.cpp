// Misuse: a pack of structs. Lanes carry arithmetic scalars only.
// EXPECT: simd requires an arithmetic type
#include "parallel/simd.hpp"

struct Particle {
    double x;
    double v;
};

void misuse()
{
    pspl::simd<Particle, 4> p;
    (void)p;
}
