// Misuse: FP64 factors driving an FP32 right-hand side -- every product
// would be computed in double and silently rounded into the float RHS.
// The mixed-precision pipeline converts the *factors* (SchurFloatFactors)
// so kernel arithmetic runs uniformly at the pack precision.
// EXPECT: FP64 factors driving an FP32 right-hand side
#include "batched/serial_getrs.hpp"
#include "parallel/view.hpp"

int misuse(const pspl::View2D<double>& lu, const pspl::View1D<int>& ipiv,
           const pspl::View1D<float>& b)
{
    return pspl::batched::SerialGetrs<>::invoke(lu, ipiv, b);
}
