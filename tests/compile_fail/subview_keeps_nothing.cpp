// Misuse: fixing every index of a subview, which would produce a rank-0
// result the View vocabulary does not have -- element reads are operator().
// EXPECT: subview must keep at least one dimension
#include "parallel/subview.hpp"

void misuse(const pspl::View2D<double>& block)
{
    auto elem = pspl::subview(block, std::size_t{0}, std::size_t{1});
    (void)elem;
}
