// Misuse: handing a whole (n, batch) block to a serial kernel that solves
// ONE right-hand side. The batch dimension is the dispatch's job; the
// kernel takes a rank-1 column (subview) or pack span.
// EXPECT: SerialPttrs arguments must be rank-1 view-like
#include "batched/serial_pttrs.hpp"
#include "parallel/view.hpp"

int misuse(const pspl::View1D<double>& d, const pspl::View1D<double>& e,
           const pspl::View2D<double>& whole_block)
{
    return pspl::batched::SerialPttrs<>::invoke(d, e, whole_block);
}
