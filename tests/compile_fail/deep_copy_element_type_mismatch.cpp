// Misuse: deep_copy from an FP64 view into an FP32 view -- an implicit
// whole-array narrowing. Precision changes go through the sanctioned
// f32<->f64 helpers, never through deep_copy.
// EXPECT: deep_copy element type mismatch
#include "parallel/deep_copy.hpp"

void misuse(const pspl::View1D<float>& dst, const pspl::View1D<double>& src)
{
    pspl::deep_copy(dst, src);
}
