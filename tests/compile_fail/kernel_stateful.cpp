// Misuse: a batched kernel with a data member. Kernels are stateless tag
// types -- per-kernel state would be shared by every batch entry and
// kernels must stay allocation-free inside parallel regions.
// EXPECT: stateless tag types
#include "batched/kernel_traits.hpp"
#include "parallel/view.hpp"

struct StatefulKernel {
    int calls = 0; // contraband state

    template <typename BView>
    static int invoke(const BView&)
    {
        return 0;
    }

    static constexpr pspl::batched::KernelCost cost(std::size_t n)
    {
        return {static_cast<double>(n), static_cast<double>(n)};
    }
};

static_assert(pspl::batched::validate_batched_kernel<StatefulKernel,
                                                     pspl::View1D<double>>());
