// Misuse: an MDRangePolicy<2> dispatch with a rank-1 body. The body must
// take one index per policy dimension.
// EXPECT: MDRangePolicy<2> body must be invocable
#include "parallel/parallel.hpp"

void misuse()
{
    pspl::MDRangePolicy<2> policy({4, 4});
    pspl::parallel_for("wrong_arity", policy, [](std::size_t) {});
}
