// Misuse: a 3-lane pack. Tail masks and the 2:1 f32/f64 conversion shapes
// assume power-of-two lane counts.
// EXPECT: simd width must be a power of two
#include "parallel/simd.hpp"

void misuse()
{
    pspl::simd<double, 3> p;
    (void)p;
}
