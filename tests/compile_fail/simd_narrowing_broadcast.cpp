// Misuse: broadcasting a double scalar into float lanes -- a silent
// round-off injected into every lane of every batch entry. The
// mixed-precision pipeline confines narrowing to simd_narrow().
// EXPECT: simd broadcast narrows a floating-point scalar
#include "parallel/simd.hpp"

void misuse()
{
    pspl::simd<float, 8> p(1.0);
    (void)p;
}
