// Misuse: deep_copy between views of different rank. The catch-all
// diagnostic overload names the broken compatibility clause instead of
// dumping an overload-resolution backtrace.
// EXPECT: deep_copy rank mismatch
#include "parallel/deep_copy.hpp"

void misuse(const pspl::View2D<double>& dst, const pspl::View1D<double>& src)
{
    pspl::deep_copy(dst, src);
}
