// Misuse: a batched kernel without a constexpr static cost() model. Every
// kernel carries its hand-counted flops/bytes so the profiling layer can
// attribute achieved bandwidth (docs/PROFILING.md).
// EXPECT: missing a constexpr static cost
#include "batched/kernel_traits.hpp"
#include "parallel/view.hpp"

struct CostlessKernel {
    template <typename BView>
    static int invoke(const BView&)
    {
        return 0;
    }
};

static_assert(pspl::batched::validate_batched_kernel<CostlessKernel,
                                                     pspl::View1D<double>>());
