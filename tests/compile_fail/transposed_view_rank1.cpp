// Misuse: transposing a rank-1 view. Only a matrix has a zero-copy
// transpose; the diagnostic overload carries the rank-compatibility message.
// EXPECT: transposed_view requires a rank-2 view
#include "parallel/subview.hpp"

void misuse(const pspl::View1D<double>& column)
{
    pspl::transposed_view(column);
}
