// Misuse: driving the FP64 batched Schur solve with an FP32 block. The
// SchurDeviceData factors are FP64; the FP32 path is the mixed-precision
// driver (core/refinement.hpp) staging through SchurFloatFactors.
// EXPECT: consumes an FP64 block
#include "core/batched_solve.hpp"

void misuse(const pspl::core::SchurDeviceData& s,
            const pspl::View2D<float>& b)
{
    pspl::core::schur_solve_batched_simd<4>(s, b);
}
