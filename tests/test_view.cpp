// Unit tests for the View/subview/deep_copy substrate.
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace {

using pspl::ALL;
using pspl::LayoutLeft;
using pspl::LayoutRight;
using pspl::subview;
using pspl::View;
using pspl::View1D;
using pspl::View2D;
using pspl::View3D;

TEST(View, AllocatesZeroInitialized)
{
    View2D<double> v("v", 3, 4);
    EXPECT_EQ(v.extent(0), 3u);
    EXPECT_EQ(v.extent(1), 4u);
    EXPECT_EQ(v.size(), 12u);
    EXPECT_EQ(v.label(), "v");
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_EQ(v(i, j), 0.0);
        }
    }
}

TEST(View, LayoutRightStrides)
{
    View3D<double> v("v", 2, 3, 4);
    EXPECT_EQ(v.stride(0), 12u);
    EXPECT_EQ(v.stride(1), 4u);
    EXPECT_EQ(v.stride(2), 1u);
    EXPECT_TRUE(v.span_is_contiguous());
}

TEST(View, LayoutLeftStrides)
{
    View<double, 3, LayoutLeft> v("v", 2, 3, 4);
    EXPECT_EQ(v.stride(0), 1u);
    EXPECT_EQ(v.stride(1), 2u);
    EXPECT_EQ(v.stride(2), 6u);
    EXPECT_TRUE(v.span_is_contiguous());
}

TEST(View, IndexingWritesDistinctElements)
{
    View2D<int> v("v", 4, 5);
    int c = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            v(i, j) = c++;
        }
    }
    c = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            EXPECT_EQ(v(i, j), c++);
        }
    }
}

TEST(View, CopiesAreShallow)
{
    View1D<double> a("a", 5);
    View1D<double> b = a;
    b(2) = 42.0;
    EXPECT_EQ(a(2), 42.0);
    EXPECT_EQ(a.data(), b.data());
}

TEST(View, DefaultConstructedIsUnallocated)
{
    View1D<double> v;
    EXPECT_FALSE(v.is_allocated());
}

TEST(View, UnmanagedWrapsExistingMemory)
{
    double buf[6] = {0, 1, 2, 3, 4, 5};
    View<double, 2, LayoutRight> v(buf, {2, 3});
    EXPECT_EQ(v(0, 2), 2.0);
    EXPECT_EQ(v(1, 0), 3.0);
    v(1, 2) = 99.0;
    EXPECT_EQ(buf[5], 99.0);
}

TEST(Subview, ColumnOfMatrixIsStrided)
{
    View2D<double> m("m", 4, 6);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 6; ++j) {
            m(i, j) = 10.0 * static_cast<double>(i) + static_cast<double>(j);
        }
    }
    auto col = subview(m, ALL, std::size_t{2});
    static_assert(decltype(col)::rank == 1);
    EXPECT_EQ(col.extent(0), 4u);
    EXPECT_EQ(col.stride(0), 6u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(col(i), 10.0 * static_cast<double>(i) + 2.0);
    }
}

TEST(Subview, RowOfMatrixIsContiguous)
{
    View2D<double> m("m", 4, 6);
    m(1, 3) = 7.0;
    auto row = subview(m, std::size_t{1}, ALL);
    EXPECT_EQ(row.extent(0), 6u);
    EXPECT_EQ(row.stride(0), 1u);
    EXPECT_EQ(row(3), 7.0);
}

TEST(Subview, PairSelectsHalfOpenRange)
{
    View1D<double> v("v", 10);
    for (std::size_t i = 0; i < 10; ++i) {
        v(i) = static_cast<double>(i);
    }
    auto w = subview(v, std::pair<std::size_t, std::size_t>(3, 7));
    EXPECT_EQ(w.extent(0), 4u);
    EXPECT_EQ(w(0), 3.0);
    EXPECT_EQ(w(3), 6.0);
    w(0) = -1.0;
    EXPECT_EQ(v(3), -1.0); // aliases parent
}

TEST(Subview, BlockOfMatrix)
{
    View2D<double> m("m", 6, 8);
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            m(i, j) = static_cast<double>(i * 8 + j);
        }
    }
    auto blk = subview(m, std::pair<std::size_t, std::size_t>(2, 5),
                       std::pair<std::size_t, std::size_t>(1, 4));
    EXPECT_EQ(blk.extent(0), 3u);
    EXPECT_EQ(blk.extent(1), 3u);
    EXPECT_EQ(blk(0, 0), m(2, 1));
    EXPECT_EQ(blk(2, 2), m(4, 3));
}

TEST(Subview, OfSubviewComposes)
{
    View2D<double> m("m", 8, 8);
    m(5, 6) = 3.5;
    auto rows = subview(m, std::pair<std::size_t, std::size_t>(4, 8), ALL);
    auto cell = subview(rows, std::size_t{1}, ALL);
    EXPECT_EQ(cell(6), 3.5);
}

TEST(Subview, KeepsAllocationAlive)
{
    View<double, 1, pspl::LayoutStride> alias;
    {
        View1D<double> owner("owner", 4);
        owner(1) = 2.5;
        alias = subview(owner, std::pair<std::size_t, std::size_t>(0, 4));
    }
    // Owner went out of scope; alias shares ownership so this is valid.
    EXPECT_EQ(alias(1), 2.5);
}

TEST(Subview, Rank3ToRank1)
{
    View3D<double> t("t", 3, 4, 5);
    t(2, 1, 3) = 9.0;
    auto line = subview(t, std::size_t{2}, std::size_t{1}, ALL);
    EXPECT_EQ(line.extent(0), 5u);
    EXPECT_EQ(line(3), 9.0);
}

TEST(DeepCopy, CopiesAcrossLayouts)
{
    View<double, 2, LayoutRight> src("src", 3, 4);
    View<double, 2, LayoutLeft> dst("dst", 3, 4);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            src(i, j) = static_cast<double>(i * 4 + j);
        }
    }
    pspl::deep_copy(dst, src);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_EQ(dst(i, j), src(i, j));
        }
    }
}

TEST(DeepCopy, ScalarFill)
{
    View2D<double> v("v", 3, 3);
    pspl::deep_copy(v, 2.5);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(v(i, j), 2.5);
        }
    }
}

TEST(DeepCopy, CloneIsIndependent)
{
    View1D<double> a("a", 3);
    a(0) = 1.0;
    auto b = pspl::clone(a);
    b(0) = 5.0;
    EXPECT_EQ(a(0), 1.0);
    EXPECT_EQ(b(0), 5.0);
}

TEST(View, Rank4AllocationAndIndexing)
{
    pspl::View4D<double> v("v", 2, 3, 4, 5);
    EXPECT_EQ(v.size(), 120u);
    EXPECT_EQ(v.stride(0), 60u);
    EXPECT_EQ(v.stride(3), 1u);
    v(1, 2, 3, 4) = 8.5;
    EXPECT_EQ(v.data()[119], 8.5);
    auto line = subview(v, std::size_t{1}, std::size_t{2}, std::size_t{3},
                        ALL);
    EXPECT_EQ(line(4), 8.5);
}

TEST(TransposedView, LayoutLeftSource)
{
    View<double, 2, LayoutLeft> m("m", 3, 4);
    m(2, 1) = -4.5;
    auto t = pspl::transposed_view(m);
    EXPECT_EQ(t.extent(0), 4u);
    EXPECT_EQ(t.extent(1), 3u);
    EXPECT_EQ(t(1, 2), -4.5);
    // Transposing a LayoutLeft view yields row-contiguous access.
    EXPECT_EQ(t.stride(1), 1u);
}

TEST(Subview, StridedViewIsNotContiguous)
{
    View2D<double> m("m", 4, 6);
    auto col = subview(m, ALL, std::size_t{0});
    EXPECT_FALSE(col.span_is_contiguous());
    auto row = subview(m, std::size_t{0}, ALL);
    EXPECT_TRUE(row.span_is_contiguous());
}

// ---------------------------------------------------------------------------
// Aliasing rules: subviews are views of the parent storage, never copies.
// ---------------------------------------------------------------------------

TEST(Subview, OverlappingRangesAliasParentStorage)
{
    View1D<double> base("base", 10);
    auto lo = subview(base, std::pair<std::size_t, std::size_t>(0, 6));
    auto hi = subview(base, std::pair<std::size_t, std::size_t>(4, 10));
    // Elements 4 and 5 are shared: a write through one range is visible
    // through the other and through the parent.
    lo(4) = 7.5;
    EXPECT_EQ(hi(0), 7.5);
    EXPECT_EQ(base(4), 7.5);
    hi(1) = -2.0;
    EXPECT_EQ(lo(5), -2.0);
    EXPECT_EQ(lo.data() + 4, hi.data());
}

TEST(Subview, DisjointRangesDoNotAlias)
{
    View1D<double> base("base", 10);
    auto lo = subview(base, std::pair<std::size_t, std::size_t>(0, 5));
    auto hi = subview(base, std::pair<std::size_t, std::size_t>(5, 10));
    lo(4) = 1.0;
    hi(0) = 2.0;
    EXPECT_EQ(base(4), 1.0);
    EXPECT_EQ(base(5), 2.0);
    // Half-open ranges: [0, 5) and [5, 10) share no element.
    EXPECT_EQ(lo.data() + 5, hi.data());
}

TEST(Subview, TransposedViewAliasesSource)
{
    View2D<double> m("m", 3, 4);
    auto t = pspl::transposed_view(m);
    t(2, 1) = 9.0;
    EXPECT_EQ(m(1, 2), 9.0);
    EXPECT_EQ(t.data(), m.data());
}

// ---------------------------------------------------------------------------
// deep_copy between strided and partial-extent views.
// ---------------------------------------------------------------------------

TEST(DeepCopy, StridedColumnToStridedColumn)
{
    View2D<double> a("a", 5, 4);
    View2D<double> b("b", 5, 6);
    for (std::size_t i = 0; i < 5; ++i) {
        a(i, 2) = static_cast<double>(i) + 0.5;
    }
    auto src = subview(a, ALL, std::size_t{2});
    auto dst = subview(b, ALL, std::size_t{3});
    pspl::deep_copy(dst, src);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(b(i, 3), static_cast<double>(i) + 0.5);
        // Neighbouring columns are untouched by the strided copy.
        EXPECT_EQ(b(i, 2), 0.0);
        EXPECT_EQ(b(i, 4), 0.0);
    }
}

TEST(DeepCopy, PartialExtentBlockRoundTrip)
{
    View2D<double> m("m", 6, 8);
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            m(i, j) = static_cast<double>(10 * i + j);
        }
    }
    auto block = subview(m, std::pair<std::size_t, std::size_t>(1, 4),
                         std::pair<std::size_t, std::size_t>(2, 7));
    View2D<double> stash("stash", 3, 5);
    pspl::deep_copy(stash, block);
    EXPECT_EQ(stash(0, 0), 12.0);
    EXPECT_EQ(stash(2, 4), 36.0);
    // Mutate the stash and copy it back into the (strided) block.
    pspl::deep_copy(stash, -1.0);
    pspl::deep_copy(block, stash);
    EXPECT_EQ(m(1, 2), -1.0);
    EXPECT_EQ(m(3, 6), -1.0);
    // Elements outside the block keep their original values.
    EXPECT_EQ(m(0, 0), 0.0);
    EXPECT_EQ(m(4, 7), 47.0);
    EXPECT_EQ(m(1, 1), 11.0);
}

TEST(DeepCopy, Rank3StridedSliceToCompact)
{
    View3D<double> t("t", 3, 4, 5);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            for (std::size_t k = 0; k < 5; ++k) {
                t(i, j, k) = static_cast<double>(100 * i + 10 * j + k);
            }
        }
    }
    auto slab = subview(t, std::pair<std::size_t, std::size_t>(1, 3), ALL,
                        std::pair<std::size_t, std::size_t>(0, 2));
    View3D<double> compact("compact", 2, 4, 2);
    pspl::deep_copy(compact, slab);
    EXPECT_EQ(compact(0, 0, 0), 100.0);
    EXPECT_EQ(compact(1, 3, 1), 231.0);
}

TEST(DeepCopy, IdenticalExtentSubviewsOfDistinctParents)
{
    // The overlap rule only rejects copies within one allocation; two
    // same-shape subviews of different parents copy fine.
    View2D<double> a("a", 4, 4);
    View2D<double> b("b", 4, 4);
    pspl::deep_copy(a, 3.25);
    auto sa = subview(a, std::pair<std::size_t, std::size_t>(1, 3), ALL);
    auto sb = subview(b, std::pair<std::size_t, std::size_t>(1, 3), ALL);
    pspl::deep_copy(sb, sa);
    EXPECT_EQ(b(1, 0), 3.25);
    EXPECT_EQ(b(2, 3), 3.25);
    EXPECT_EQ(b(0, 0), 0.0);
    EXPECT_EQ(b(3, 3), 0.0);
}

} // namespace
