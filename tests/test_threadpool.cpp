// Tests for the persistent work-stealing thread pool behind pspl::Threads:
// schedule parsing, deterministic range partitioning, pool reuse across
// dispatches, nested-dispatch inlining, exception propagation, worker-rank
// stability (the arena-slot contract), reduction determinism and bitwise
// cross-backend identity on a full builder solve.
#include "core/spline_builder.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/threadpool.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace {

using namespace pspl;
using detail::partition_range;
using detail::ScheduleSpec;

// The CI container may expose a single CPU; force a real multi-worker pool
// before the lazily created singleton first reads the environment. setenv
// with overwrite=0 keeps an explicit PSPL_NUM_THREADS usable for debugging.
const int g_env_init = [] {
    ::setenv("PSPL_NUM_THREADS", "4", 0);
    return 0;
}();

TEST(ScheduleSpecParse, DefaultsAndKinds)
{
    EXPECT_EQ(ScheduleSpec::parse(nullptr).kind, ScheduleSpec::Kind::Static);
    EXPECT_EQ(ScheduleSpec::parse(nullptr).chunk, 0u);
    EXPECT_EQ(ScheduleSpec::parse("").kind, ScheduleSpec::Kind::Static);
    EXPECT_EQ(ScheduleSpec::parse("static").kind, ScheduleSpec::Kind::Static);
    EXPECT_EQ(ScheduleSpec::parse("dynamic").kind,
              ScheduleSpec::Kind::Dynamic);
    EXPECT_EQ(ScheduleSpec::parse("guided").kind, ScheduleSpec::Kind::Guided);
}

TEST(ScheduleSpecParse, ChunkSuffixAndCase)
{
    const auto s = ScheduleSpec::parse("STATIC,8");
    EXPECT_EQ(s.kind, ScheduleSpec::Kind::Static);
    EXPECT_EQ(s.chunk, 8u);
    const auto d = ScheduleSpec::parse("Dynamic,64");
    EXPECT_EQ(d.kind, ScheduleSpec::Kind::Dynamic);
    EXPECT_EQ(d.chunk, 64u);
    // Unrecognized text degrades to the default static spec, like OMP_SCHEDULE.
    EXPECT_EQ(ScheduleSpec::parse("bogus,3").kind, ScheduleSpec::Kind::Static);
}

void expect_exact_cover(const std::vector<std::size_t>& bounds,
                        std::size_t begin, std::size_t end)
{
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), begin);
    EXPECT_EQ(bounds.back(), end);
    for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
        EXPECT_LT(bounds[c], bounds[c + 1]) << "empty or reversed chunk " << c;
    }
}

TEST(PartitionRange, StaticCoversExactlyOncePerWorkerChunk)
{
    const auto bounds = partition_range(10, 110, 4, {});
    expect_exact_cover(bounds, 10, 110);
    EXPECT_EQ(bounds.size(), 5u); // 4 near-equal chunks
}

TEST(PartitionRange, StaticFixedChunk)
{
    ScheduleSpec spec;
    spec.chunk = 16;
    const auto bounds = partition_range(0, 100, 4, spec);
    expect_exact_cover(bounds, 0, 100);
    EXPECT_EQ(bounds.size(), 8u); // ceil(100/16) = 7 chunks
    for (std::size_t c = 0; c + 2 < bounds.size(); ++c) {
        EXPECT_EQ(bounds[c + 1] - bounds[c], 16u);
    }
}

TEST(PartitionRange, DynamicAndGuidedCoverAndGuidedDecreases)
{
    ScheduleSpec dyn;
    dyn.kind = ScheduleSpec::Kind::Dynamic;
    expect_exact_cover(partition_range(0, 10000, 8, dyn), 0, 10000);

    ScheduleSpec gui;
    gui.kind = ScheduleSpec::Kind::Guided;
    const auto bounds = partition_range(0, 10000, 8, gui);
    expect_exact_cover(bounds, 0, 10000);
    for (std::size_t c = 0; c + 2 < bounds.size(); ++c) {
        EXPECT_GE(bounds[c + 1] - bounds[c], bounds[c + 2] - bounds[c + 1])
                << "guided chunks must not grow";
    }
}

TEST(PartitionRange, DegenerateRanges)
{
    EXPECT_TRUE(partition_range(5, 5, 4, {}).empty());
    const auto one = partition_range(7, 8, 16, {});
    expect_exact_cover(one, 7, 8);
    EXPECT_EQ(one.size(), 2u); // never more chunks than iterations
}

TEST(PartitionRange, DependsOnlyOnInputs)
{
    const auto a = partition_range(0, 12345, 4, {});
    const auto b = partition_range(0, 12345, 4, {});
    EXPECT_EQ(a, b);
}

TEST(BackendParse, NamesAndAliases)
{
    Backend b{};
    EXPECT_TRUE(parse_backend("serial", b));
    EXPECT_EQ(b, Backend::Serial);
    EXPECT_TRUE(parse_backend("openmp", b));
    EXPECT_EQ(b, Backend::OpenMP);
    EXPECT_TRUE(parse_backend("omp", b));
    EXPECT_EQ(b, Backend::OpenMP);
    EXPECT_TRUE(parse_backend("threads", b));
    EXPECT_EQ(b, Backend::Threads);
    EXPECT_TRUE(parse_backend("threadpool", b));
    EXPECT_EQ(b, Backend::Threads);
    EXPECT_FALSE(parse_backend("cuda", b));
    EXPECT_FALSE(parse_backend(nullptr, b));
}

TEST(ThreadPoolTest, SingletonIsReusedAcrossDispatches)
{
    auto& pool = ThreadPool::instance();
    EXPECT_GE(pool.concurrency(), 1);
    EXPECT_EQ(pool.workers_spawned(), pool.concurrency() - 1);

    const auto epochs_before = pool.epochs();
    const int conc_before = pool.concurrency();
    for (int rep = 0; rep < 3; ++rep) {
        View1D<int> hits("hits", 1000);
        parallel_for("pool_reuse", RangePolicy<Threads>(1000),
                     [=](std::size_t i) { hits(i) += 1; });
        for (std::size_t i = 0; i < 1000; ++i) {
            ASSERT_EQ(hits(i), 1);
        }
    }
    EXPECT_EQ(&pool, &ThreadPool::instance()) << "pool must be persistent";
    EXPECT_EQ(pool.concurrency(), conc_before);
    if (pool.concurrency() > 1) {
        EXPECT_EQ(pool.epochs(), epochs_before + 3)
                << "each dispatch is exactly one epoch on the same pool";
    }
}

TEST(ThreadPoolTest, ThreadsSpaceMatchesPool)
{
    EXPECT_EQ(Threads::concurrency(), ThreadPool::instance().concurrency());
    EXPECT_STREQ(Threads::name(), "Threads");
    // Outside any dispatch the caller is worker 0 and not in a task.
    EXPECT_EQ(Threads::thread_rank(), 0);
    EXPECT_FALSE(ThreadPool::in_task());
}

TEST(ThreadPoolTest, NestedDispatchRunsInline)
{
    const std::size_t outer_n = 8;
    const std::size_t inner_n = 64;
    View2D<int> hits("hits", outer_n, inner_n);
    View1D<int> nested_flag("nested_flag", outer_n);
    parallel_for("nested_outer", RangePolicy<Threads>(outer_n),
                 [=](std::size_t i) {
                     nested_flag(i) = ThreadPool::in_task() ? 1 : 0;
                     // Must not deadlock on the pool's run mutex: nested
                     // dispatches execute inline on the calling worker.
                     parallel_for("nested_inner", RangePolicy<Threads>(inner_n),
                                  [=](std::size_t j) { hits(i, j) += 1; });
                 });
    for (std::size_t i = 0; i < outer_n; ++i) {
        if (ThreadPool::instance().concurrency() > 1) {
            EXPECT_EQ(nested_flag(i), 1);
        }
        for (std::size_t j = 0; j < inner_n; ++j) {
            ASSERT_EQ(hits(i, j), 1) << i << "," << j;
        }
    }
}

TEST(ThreadPoolTest, ExceptionPropagatesToDispatcher)
{
    EXPECT_THROW(
            parallel_for("throwing_body", RangePolicy<Threads>(1000),
                         [](std::size_t i) {
                             if (i == 617) {
                                 throw std::runtime_error("chunk failure");
                             }
                         }),
            std::runtime_error);
    // The pool must remain usable after a failed epoch.
    std::size_t sum = 0;
    parallel_reduce(
            "after_throw", RangePolicy<Threads>(100),
            [](std::size_t i, std::size_t& acc) { acc += i; },
            Sum<std::size_t>(sum));
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, WorkerRanksAreStableAndInRange)
{
    // The arena-slot contract: while executing, every iteration sees a rank
    // in [0, concurrency()), and concurrently executing workers never share
    // one. Non-atomic per-rank counters (cache-line padded) would be a data
    // race -- caught by the TSan CI leg -- if ranks could collide.
    const int conc = Threads::concurrency();
    constexpr std::size_t kStride = 64 / sizeof(long);
    const std::size_t n = 100000;
    std::vector<long> per_rank(static_cast<std::size_t>(conc) * kStride, 0);
    long* slots = per_rank.data();
    std::atomic<int> out_of_range{0};
    parallel_for("rank_slots", RangePolicy<Threads>(n),
                 [slots, conc, &out_of_range](std::size_t) {
                     const int r = Threads::thread_rank();
                     if (r < 0 || r >= conc) {
                         out_of_range.fetch_add(1,
                                                std::memory_order_relaxed);
                         return;
                     }
                     slots[static_cast<std::size_t>(r) * kStride] += 1;
                 });
    EXPECT_EQ(out_of_range.load(), 0);
    long total = 0;
    for (int r = 0; r < conc; ++r) {
        total += slots[static_cast<std::size_t>(r) * kStride];
    }
    EXPECT_EQ(total, static_cast<long>(n));
}

TEST(ThreadPoolTest, ReduceIsBitwiseDeterministic)
{
    // Partials are combined in chunk order on the dispatching thread, so
    // two runs of the same reduction agree to the last bit even though the
    // chunk->worker assignment is timing dependent.
    auto run = [] {
        double sum = 0.0;
        parallel_reduce(
                "det_reduce", RangePolicy<Threads>(200000),
                [](std::size_t i, double& acc) {
                    acc += std::sin(1e-4 * static_cast<double>(i)) * 1e-3;
                },
                Sum<double>(sum));
        return sum;
    };
    const double a = run();
    const double b = run();
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
            << "reduction must be bitwise reproducible";
}

double phase_sample(double x, std::size_t j)
{
    return std::sin(2.0 * std::numbers::pi * x)
           + 0.5 * std::cos(4.0 * std::numbers::pi * x
                            + 0.01 * static_cast<double>(j));
}

TEST(ThreadPoolTest, BuilderSolveIsBitwiseIdenticalToSerial)
{
    // The acceptance bar of the backend: a full Schur-complement solve on
    // the fused SpMV path must produce coefficients bitwise identical
    // (0 ULP) to the Serial backend, because chunking never changes
    // per-column arithmetic.
    const auto basis = bsplines::BSplineBasis::uniform(3, 64, 0.0, 1.0);
    const std::size_t n = basis.nbasis();
    const std::size_t batch = 257; // odd: exercises remainder chunks
    core::SplineBuilder builder(basis, core::BuilderVersion::FusedSpmvSimd);
    const auto pts = basis.interpolation_points();
    View2D<double> ref("ref", n, batch);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            ref(i, j) = phase_sample(pts[i], j);
        }
    }
    auto out = clone(ref);
    builder.build_inplace<Serial>(ref);
    builder.build_inplace<Threads>(out);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            ASSERT_EQ(std::memcmp(&ref(i, j), &out(i, j), sizeof(double)), 0)
                    << "coefficient (" << i << ", " << j
                    << ") differs bitwise";
        }
    }
}

} // namespace
