// Tests for the Vlasov-Poisson module: the periodic field solver and the
// physics of the 1D1V system (Landau damping rate, two-stream instability
// growth, conservation laws).
#include "vlasov/vlasov_poisson.hpp"

#include "bsplines/knots.hpp"
#include "parallel/deep_copy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using vlasov::Poisson1DPeriodic;
using vlasov::VlasovPoisson1D1V;

constexpr double pi = std::numbers::pi;

TEST(Poisson, SinusoidalChargeGivesAnalyticField)
{
    // rho = 1 + alpha cos(k x)  ->  E = (alpha/k) sin(k x), zero mean.
    const double k = 0.5;
    const double lx = 2.0 * pi / k;
    const double alpha = 0.25;
    const std::size_t n = 128;
    const auto basis = BSplineBasis::uniform(3, n, 0.0, lx);
    Poisson1DPeriodic poisson(basis);
    View1D<double> rho("rho", n);
    View1D<double> e("e", n);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        rho(i) = 1.0 + alpha * std::cos(k * pts[i]);
    }
    poisson.solve(rho, e);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(e(i), (alpha / k) * std::sin(k * pts[i]), 2e-3)
                << "i=" << i;
    }
    // Analytic field energy: 0.5 * (alpha/k)^2 * L/2.
    EXPECT_NEAR(poisson.field_energy(e),
                0.25 * (alpha / k) * (alpha / k) * lx, 1e-2);
}

TEST(Poisson, UniformChargeGivesZeroField)
{
    const std::size_t n = 64;
    const auto basis = BSplineBasis::uniform(3, n, 0.0, 1.0);
    Poisson1DPeriodic poisson(basis);
    View1D<double> rho("rho", n);
    View1D<double> e("e", n);
    for (std::size_t i = 0; i < n; ++i) {
        rho(i) = 3.7;
    }
    poisson.solve(rho, e);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(e(i), 0.0, 1e-13);
    }
    EXPECT_NEAR(poisson.field_energy(e), 0.0, 1e-20);
}

TEST(Poisson, WorksOnNonUniformGrids)
{
    const double k = 1.0;
    const double lx = 2.0 * pi;
    const std::size_t n = 160;
    const auto basis = BSplineBasis::non_uniform(
            3, bsplines::stretched_breaks(n, 0.0, lx, 0.4));
    Poisson1DPeriodic poisson(basis);
    View1D<double> rho("rho", n);
    View1D<double> e("e", n);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        rho(i) = 2.0 + 0.1 * std::cos(k * pts[i]);
    }
    poisson.solve(rho, e);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(e(i), 0.1 * std::sin(k * pts[i]), 5e-3);
    }
}

TEST(Poisson, RejectsClampedBasis)
{
    const auto basis = BSplineBasis::clamped_uniform(3, 16, 0.0, 1.0);
    EXPECT_DEATH(Poisson1DPeriodic{basis}, "periodic");
}

VlasovPoisson1D1V make_landau(std::size_t nx, std::size_t nv, double dt,
                              double alpha)
{
    const double k = 0.5;
    const double lx = 2.0 * pi / k;
    const auto bx = BSplineBasis::uniform(3, nx, 0.0, lx);
    const auto bv = BSplineBasis::uniform(3, nv, -6.0, 6.0);
    VlasovPoisson1D1V sim(bx, bv, dt);
    const double norm = 1.0 / std::sqrt(2.0 * pi);
    sim.initialize([=](double x, double v) {
        return norm * std::exp(-0.5 * v * v) * (1.0 + alpha * std::cos(k * x));
    });
    return sim;
}

TEST(VlasovPoisson, LandauDampingRateMatchesLinearTheory)
{
    auto sim = make_landau(64, 128, 0.1, 0.01);
    // Track field-energy peaks to fit the damping envelope.
    std::vector<double> peak_t;
    std::vector<double> peak_e;
    double prev2 = 0.0;
    double prev1 = 0.0;
    for (int s = 0; s < 150; ++s) {
        sim.step();
        const double e = sim.diagnostics().field_energy;
        if (s >= 2 && prev1 > prev2 && prev1 > e) {
            peak_t.push_back(sim.time() - sim.dt());
            peak_e.push_back(prev1);
        }
        prev2 = prev1;
        prev1 = e;
    }
    ASSERT_GE(peak_t.size(), 3u);
    const double gamma = 0.5
                         * std::log(peak_e.back() / peak_e.front())
                         / (peak_t.back() - peak_t.front());
    // Linear Landau damping at k = 0.5: gamma = -0.1533.
    EXPECT_NEAR(gamma, -0.1533, 0.02);
}

TEST(VlasovPoisson, ConservesMassAndMomentum)
{
    auto sim = make_landau(32, 64, 0.1, 0.05);
    const auto d0 = sim.diagnostics();
    EXPECT_NEAR(d0.mass, 4.0 * pi, 1e-3); // L_x * 1 (unit density)
    // The v grid is not exactly symmetric about 0 (wrapped Greville
    // points), so the discrete odd moment starts at ~1e-7, not 0.
    EXPECT_NEAR(d0.momentum, 0.0, 1e-6);
    sim.run(100);
    const auto d1 = sim.diagnostics();
    EXPECT_NEAR(d1.mass, d0.mass, 1e-9 * d0.mass);
    EXPECT_NEAR(d1.momentum, d0.momentum, 1e-6);
    // L2 norm decays (numerical filamentation damping) but stays close.
    EXPECT_LE(d1.l2_norm, d0.l2_norm * (1.0 + 1e-9));
    EXPECT_GT(d1.l2_norm, 0.8 * d0.l2_norm);
}

TEST(VlasovPoisson, TotalEnergyApproximatelyConserved)
{
    // Vlasov-Poisson conserves kinetic + field energy exactly; the
    // semi-Lagrangian discretization conserves it to interpolation/
    // splitting error. Over t = 10 the drift must stay well under 1 %.
    auto sim = make_landau(48, 96, 0.1, 0.05);
    const auto d0 = sim.diagnostics();
    const double e0 = d0.kinetic_energy + d0.field_energy;
    sim.run(100);
    const auto d1 = sim.diagnostics();
    const double e1 = d1.kinetic_energy + d1.field_energy;
    EXPECT_NEAR(e1, e0, 5e-3 * e0);
}

TEST(VlasovPoisson, TwoStreamInstabilityGrows)
{
    // Two counter-streaming beams are unstable: the field energy must grow
    // exponentially by orders of magnitude before saturation.
    const double k = 0.2;
    const double lx = 2.0 * pi / k;
    const double v0 = 2.4;
    const auto bx = BSplineBasis::uniform(3, 32, 0.0, lx);
    const auto bv = BSplineBasis::uniform(3, 64, -8.0, 8.0);
    VlasovPoisson1D1V sim(bx, bv, 0.1);
    const double norm = 0.5 / std::sqrt(2.0 * pi);
    sim.initialize([=](double x, double v) {
        const double beams = std::exp(-0.5 * (v - v0) * (v - v0))
                             + std::exp(-0.5 * (v + v0) * (v + v0));
        return norm * beams * (1.0 + 1e-3 * std::cos(k * x));
    });
    sim.run(50); // t = 5, past initial transients
    const double e_early = sim.diagnostics().field_energy;
    sim.run(200); // t = 25
    const double e_late = sim.diagnostics().field_energy;
    EXPECT_GT(e_late, 50.0 * e_early)
            << "early " << e_early << " late " << e_late;
}

TEST(VlasovPoisson, QuietStartStaysQuiet)
{
    // A spatially uniform Maxwellian is a stationary solution: the field
    // stays at round-off level and f does not move.
    auto sim = make_landau(32, 64, 0.1, 0.0);
    const auto f0 = clone(sim.f());
    sim.run(20);
    EXPECT_LT(sim.diagnostics().field_energy, 1e-25);
    for (std::size_t j = 0; j < sim.nv(); j += 7) {
        for (std::size_t i = 0; i < sim.nx(); i += 5) {
            EXPECT_NEAR(sim.f()(j, i), f0(j, i), 1e-11);
        }
    }
}

TEST(VlasovPoisson, SpectralFieldSolverGivesSamePhysics)
{
    // The FFT field solver and the quadrature one must produce nearly
    // identical dynamics on a uniform grid (their fields agree to the
    // trapezoid-vs-spectral difference, tiny for smooth rho).
    const double k = 0.5;
    const double lx = 2.0 * pi / k;
    const auto bx = BSplineBasis::uniform(3, 48, 0.0, lx);
    const auto bv = BSplineBasis::uniform(3, 96, -6.0, 6.0);
    const double norm = 1.0 / std::sqrt(2.0 * pi);
    auto init = [=](double x, double v) {
        return norm * std::exp(-0.5 * v * v) * (1.0 + 0.02 * std::cos(k * x));
    };

    VlasovPoisson1D1V s1(bx, bv, 0.1);
    s1.initialize(init);
    VlasovPoisson1D1V::Config cfg;
    cfg.spectral_poisson = true;
    VlasovPoisson1D1V s2(bx, bv, 0.1, cfg);
    s2.initialize(init);

    for (int s = 0; s < 30; ++s) {
        s1.step();
        s2.step();
    }
    const auto d1 = s1.diagnostics();
    const auto d2 = s2.diagnostics();
    EXPECT_NEAR(d1.field_energy, d2.field_energy,
                0.05 * std::max(d1.field_energy, 1e-12));
    for (std::size_t j = 0; j < s1.nv(); j += 9) {
        for (std::size_t i = 0; i < s1.nx(); i += 7) {
            EXPECT_NEAR(s1.f()(j, i), s2.f()(j, i), 1e-4);
        }
    }
}

TEST(VlasovPoisson, FusedTransposeConfigAgrees)
{
    auto s1 = make_landau(32, 48, 0.1, 0.02);
    const double k = 0.5;
    const double lx = 2.0 * pi / k;
    const auto bx = BSplineBasis::uniform(3, 32, 0.0, lx);
    const auto bv = BSplineBasis::uniform(3, 48, -6.0, 6.0);
    VlasovPoisson1D1V::Config cfg;
    cfg.fuse_transpose = true;
    VlasovPoisson1D1V s2(bx, bv, 0.1, cfg);
    const double norm = 1.0 / std::sqrt(2.0 * pi);
    s2.initialize([=](double x, double v) {
        return norm * std::exp(-0.5 * v * v)
               * (1.0 + 0.02 * std::cos(k * x));
    });
    for (int s = 0; s < 10; ++s) {
        s1.step();
        s2.step();
    }
    for (std::size_t j = 0; j < s1.nv(); ++j) {
        for (std::size_t i = 0; i < s1.nx(); ++i) {
            EXPECT_NEAR(s1.f()(j, i), s2.f()(j, i), 1e-13);
        }
    }
}

} // namespace
