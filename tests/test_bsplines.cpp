// Property tests for the periodic B-spline basis: partition of unity,
// non-negativity, locality, derivative consistency, Greville points and
// knot bookkeeping, swept over degrees and uniform/non-uniform grids.
#include "bsplines/basis.hpp"
#include "bsplines/knots.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>
#include <vector>

namespace {

using pspl::bsplines::BSplineBasis;
using pspl::bsplines::refined_breaks;
using pspl::bsplines::stretched_breaks;
using pspl::bsplines::uniform_breaks;

class BasisParam
    : public ::testing::TestWithParam<std::tuple<int, bool, std::size_t>>
{
protected:
    BSplineBasis make() const
    {
        const auto [degree, uniform, ncells] = GetParam();
        if (uniform) {
            return BSplineBasis::uniform(degree, ncells, 0.0, 2.0);
        }
        return BSplineBasis::non_uniform(
                degree, stretched_breaks(ncells, 0.0, 2.0, 0.5));
    }
};

TEST_P(BasisParam, PartitionOfUnity)
{
    const auto basis = make();
    std::vector<double> vals(static_cast<std::size_t>(basis.degree()) + 1);
    for (int s = 0; s < 200; ++s) {
        const double x = 0.011 * static_cast<double>(s);
        basis.eval_basis(x, vals.data());
        double sum = 0.0;
        for (const double v : vals) {
            EXPECT_GE(v, -1e-14);
            EXPECT_LE(v, 1.0 + 1e-14);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << "x=" << x;
    }
}

TEST_P(BasisParam, DerivativesSumToZero)
{
    const auto basis = make();
    std::vector<double> dvals(static_cast<std::size_t>(basis.degree()) + 1);
    for (int s = 0; s < 100; ++s) {
        const double x = 0.0199 * static_cast<double>(s);
        basis.eval_deriv(x, dvals.data());
        double sum = 0.0;
        for (const double v : dvals) {
            sum += v;
        }
        EXPECT_NEAR(sum, 0.0, 1e-10) << "x=" << x;
    }
}

TEST_P(BasisParam, DerivativeMatchesFiniteDifference)
{
    const auto basis = make();
    const std::size_t np = static_cast<std::size_t>(basis.degree()) + 1;
    std::vector<double> vp(np);
    std::vector<double> vm(np);
    std::vector<double> dv(np);
    const double h = 1e-6;
    for (int s = 1; s < 40; ++s) {
        // Stay away from break points where the FD stencil straddles cells
        // of reduced smoothness for low degrees.
        const double x = 0.05 * static_cast<double>(s) + 0.013;
        const long jd = basis.eval_deriv(x, dv.data());
        const long jp = basis.eval_basis(x + h, vp.data());
        const long jm = basis.eval_basis(x - h, vm.data());
        if (jp != jm || jp != jd) {
            continue; // stencil crossed a cell boundary; skip this point
        }
        for (std::size_t r = 0; r < np; ++r) {
            const double fd = (vp[r] - vm[r]) / (2.0 * h);
            EXPECT_NEAR(dv[r], fd, 1e-5) << "x=" << x << " r=" << r;
        }
    }
}

TEST_P(BasisParam, GrevillePointsLieInDomain)
{
    const auto basis = make();
    const auto pts = basis.interpolation_points();
    EXPECT_EQ(pts.size(), basis.nbasis());
    for (const double p : pts) {
        EXPECT_GE(p, basis.xmin());
        EXPECT_LT(p, basis.xmax());
    }
}

TEST_P(BasisParam, FindCellIsConsistentWithBreaks)
{
    const auto basis = make();
    for (int s = 0; s < 300; ++s) {
        const double x = basis.xmin()
                         + (basis.length() * static_cast<double>(s)) / 300.0;
        const std::size_t c = basis.find_cell(x);
        ASSERT_LT(c, basis.ncells());
        EXPECT_GE(x, basis.break_point(c) - 1e-14);
        EXPECT_LT(x, basis.break_point(c + 1) + 1e-14);
    }
}

TEST_P(BasisParam, WrapIsPeriodic)
{
    const auto basis = make();
    for (int s = 0; s < 50; ++s) {
        const double x = basis.xmin() + 0.037 * static_cast<double>(s);
        const double w = basis.wrap(x);
        EXPECT_GE(w, basis.xmin());
        EXPECT_LT(w, basis.xmax());
        EXPECT_NEAR(basis.wrap(x + basis.length()), w, 1e-12);
        EXPECT_NEAR(basis.wrap(x - 3.0 * basis.length()), w, 1e-11);
    }
}

TEST_P(BasisParam, BasisIsPeriodic)
{
    const auto basis = make();
    const std::size_t np = static_cast<std::size_t>(basis.degree()) + 1;
    std::vector<double> v1(np);
    std::vector<double> v2(np);
    for (int s = 0; s < 60; ++s) {
        const double x = basis.xmin() + 0.031 * static_cast<double>(s);
        const long j1 = basis.eval_basis(x, v1.data());
        const long j2 = basis.eval_basis(x + basis.length(), v2.data());
        EXPECT_EQ(j1, j2);
        for (std::size_t r = 0; r < np; ++r) {
            EXPECT_NEAR(v1[r], v2[r], 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
        DegreesAndGrids, BasisParam,
        ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7),
                           ::testing::Bool(),
                           ::testing::Values(std::size_t{16},
                                             std::size_t{37})),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const bool u = std::get<1>(info.param);
            const std::size_t n = std::get<2>(info.param);
            return std::string("deg") + std::to_string(d)
                   + (u ? "_uniform_" : "_nonuniform_") + std::to_string(n);
        });

TEST(Basis, UniformCubicAtKnotsGivesClassicWeights)
{
    // Degree-3 uniform basis evaluated at a knot: [1/6, 4/6, 1/6, 0].
    const auto basis = BSplineBasis::uniform(3, 10, 0.0, 10.0);
    double vals[4];
    basis.eval_basis(4.0, vals);
    EXPECT_NEAR(vals[0], 1.0 / 6.0, 1e-13);
    EXPECT_NEAR(vals[1], 4.0 / 6.0, 1e-13);
    EXPECT_NEAR(vals[2], 1.0 / 6.0, 1e-13);
    EXPECT_NEAR(vals[3], 0.0, 1e-13);
}

TEST(Basis, UniformQuinticAtKnotsGivesClassicWeights)
{
    // Degree-5 uniform basis at a knot: [1, 26, 66, 26, 1]/120 and a zero.
    const auto basis = BSplineBasis::uniform(5, 16, 0.0, 16.0);
    double vals[6];
    basis.eval_basis(8.0, vals);
    EXPECT_NEAR(vals[0], 1.0 / 120.0, 1e-13);
    EXPECT_NEAR(vals[1], 26.0 / 120.0, 1e-13);
    EXPECT_NEAR(vals[2], 66.0 / 120.0, 1e-13);
    EXPECT_NEAR(vals[3], 26.0 / 120.0, 1e-13);
    EXPECT_NEAR(vals[4], 1.0 / 120.0, 1e-13);
    EXPECT_NEAR(vals[5], 0.0, 1e-13);
}

TEST(Basis, KnotsExtendPeriodically)
{
    const auto b = BSplineBasis::non_uniform(
            3, stretched_breaks(8, 0.0, 1.0, 0.4));
    const double length = 1.0;
    for (int j = 1; j <= 3; ++j) {
        EXPECT_NEAR(b.knot(-j), b.knot(static_cast<long>(b.ncells()) - j)
                                        - length,
                    1e-14);
        EXPECT_NEAR(b.knot(static_cast<long>(b.ncells()) + j),
                    b.knot(j) + length, 1e-14);
    }
}

TEST(Basis, RejectsInvalidConfigurations)
{
    EXPECT_DEATH(BSplineBasis::uniform(3, 2, 0.0, 1.0), "ncells > degree");
    EXPECT_DEATH(BSplineBasis::uniform(0, 8, 0.0, 1.0), "unsupported degree");
    std::vector<double> decreasing = {0.0, 0.5, 0.4, 1.0};
    EXPECT_DEATH(BSplineBasis::non_uniform(1, decreasing),
                 "strictly increasing");
}

TEST(Knots, UniformBreaksAreEquispaced)
{
    const auto b = uniform_breaks(10, -1.0, 1.0);
    ASSERT_EQ(b.size(), 11u);
    EXPECT_DOUBLE_EQ(b.front(), -1.0);
    EXPECT_DOUBLE_EQ(b.back(), 1.0);
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
        EXPECT_NEAR(b[i + 1] - b[i], 0.2, 1e-14);
    }
}

TEST(Knots, StretchedBreaksAreMonotoneAndSpanDomain)
{
    const auto b = stretched_breaks(32, 0.0, 2.0 * std::numbers::pi, 0.7);
    ASSERT_EQ(b.size(), 33u);
    EXPECT_DOUBLE_EQ(b.front(), 0.0);
    EXPECT_DOUBLE_EQ(b.back(), 2.0 * std::numbers::pi);
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
        EXPECT_GT(b[i + 1], b[i]);
    }
    // strength 0 reproduces the uniform grid
    const auto u = stretched_breaks(8, 0.0, 1.0, 0.0);
    const auto ref = uniform_breaks(8, 0.0, 1.0);
    for (std::size_t i = 0; i < u.size(); ++i) {
        EXPECT_NEAR(u[i], ref[i], 1e-14);
    }
}

TEST(Knots, RefinedBreaksConcentrateCellsNearX0)
{
    const std::size_t n = 64;
    const auto b = refined_breaks(n, 0.0, 1.0, 0.75, 8.0);
    ASSERT_EQ(b.size(), n + 1);
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
        EXPECT_GT(b[i + 1], b[i]);
    }
    // Smallest cell should be near x0=0.75 and much smaller than the edge
    // cells.
    double min_dx = 1e9;
    std::size_t argmin = 0;
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
        const double dx = b[i + 1] - b[i];
        if (dx < min_dx) {
            min_dx = dx;
            argmin = i;
        }
    }
    EXPECT_NEAR(0.5 * (b[argmin] + b[argmin + 1]), 0.75, 0.1);
    EXPECT_LT(min_dx * 3.0, b[1] - b[0]);
}

} // namespace
