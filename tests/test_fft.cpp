// Tests for the FFT substrate: agreement with a naive DFT for power-of-two
// and arbitrary lengths (Bluestein), roundtrip, Parseval, linearity, and
// the spectral Poisson solver against the quadrature-based one.
#include "fft/fft.hpp"
#include "fft/spectral_poisson.hpp"
#include "bsplines/knots.hpp"
#include "vlasov/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

namespace {

using namespace pspl;
using cplx = std::complex<double>;

std::vector<cplx> naive_dft(const std::vector<cplx>& x, bool inverse)
{
    const std::size_t n = x.size();
    const double sign = inverse ? 1.0 : -1.0;
    std::vector<cplx> out(n, {0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t m = 0; m < n; ++m) {
            const double ang = sign * 2.0 * std::numbers::pi
                               * static_cast<double>(k * m)
                               / static_cast<double>(n);
            out[k] += x[m] * cplx(std::cos(ang), std::sin(ang));
        }
        if (inverse) {
            out[k] /= static_cast<double>(n);
        }
    }
    return out;
}

std::vector<cplx> random_signal(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<cplx> x(n);
    for (auto& v : x) {
        v = cplx(dist(rng), dist(rng));
    }
    return x;
}

class FftSized : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftSized, MatchesNaiveDft)
{
    const std::size_t n = GetParam();
    auto x = random_signal(n, 5 + static_cast<unsigned>(n));
    const auto ref = naive_dft(x, false);
    fft::transform(x, fft::Direction::Forward);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(x[k].real(), ref[k].real(), 1e-9 * static_cast<double>(n))
                << "k=" << k;
        EXPECT_NEAR(x[k].imag(), ref[k].imag(), 1e-9 * static_cast<double>(n));
    }
}

TEST_P(FftSized, RoundTripIsIdentity)
{
    const std::size_t n = GetParam();
    auto x = random_signal(n, 11 + static_cast<unsigned>(n));
    const auto orig = x;
    fft::transform(x, fft::Direction::Forward);
    fft::transform(x, fft::Direction::Backward);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(x[k].real(), orig[k].real(), 1e-11);
        EXPECT_NEAR(x[k].imag(), orig[k].imag(), 1e-11);
    }
}

TEST_P(FftSized, ParsevalHolds)
{
    const std::size_t n = GetParam();
    auto x = random_signal(n, 23 + static_cast<unsigned>(n));
    double time_energy = 0.0;
    for (const auto& v : x) {
        time_energy += std::norm(v);
    }
    fft::transform(x, fft::Direction::Forward);
    double freq_energy = 0.0;
    for (const auto& v : x) {
        freq_energy += std::norm(v);
    }
    EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
                1e-9 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftSized,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16, 37, 64,
                                           100, 128, 1000));

TEST(Fft, PureToneLandsInSingleBin)
{
    const std::size_t n = 64;
    std::vector<cplx> x(n);
    const std::size_t tone = 5;
    for (std::size_t m = 0; m < n; ++m) {
        const double ang = 2.0 * std::numbers::pi * static_cast<double>(tone)
                           * static_cast<double>(m) / static_cast<double>(n);
        x[m] = cplx(std::cos(ang), std::sin(ang));
    }
    fft::transform(x, fft::Direction::Forward);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == tone) {
            EXPECT_NEAR(x[k].real(), static_cast<double>(n), 1e-9);
        } else {
            EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
        }
    }
}

TEST(Fft, LinearityAndRealInput)
{
    const std::size_t n = 100; // Bluestein path
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = std::sin(0.17 * static_cast<double>(i));
    }
    const auto spec = fft::forward_real(r);
    ASSERT_EQ(spec.size(), n);
    // Real input => Hermitian spectrum: X_k = conj(X_{n-k}).
    for (std::size_t k = 1; k < n; ++k) {
        EXPECT_NEAR(spec[k].real(), spec[n - k].real(), 1e-9);
        EXPECT_NEAR(spec[k].imag(), -spec[n - k].imag(), 1e-9);
    }
    EXPECT_TRUE(fft::is_pow2(64));
    EXPECT_FALSE(fft::is_pow2(100));
    EXPECT_FALSE(fft::is_pow2(0));
}

TEST(SpectralPoisson, MatchesAnalyticField)
{
    const double k = 0.5;
    const double lx = 2.0 * std::numbers::pi / k;
    const std::size_t n = 64;
    const auto basis = bsplines::BSplineBasis::uniform(3, n, 0.0, lx);
    fft::SpectralPoisson1D poisson(basis);
    View1D<double> rho("rho", n);
    View1D<double> e("e", n);
    const auto pts = basis.interpolation_points();
    const double alpha = 0.3;
    for (std::size_t i = 0; i < n; ++i) {
        rho(i) = 2.0 + alpha * std::cos(k * pts[i]);
    }
    poisson.solve(rho, e);
    for (std::size_t i = 0; i < n; ++i) {
        // Spectral: exact for a single mode.
        EXPECT_NEAR(e(i), (alpha / k) * std::sin(k * pts[i]), 1e-12);
    }
}

TEST(SpectralPoisson, AgreesWithQuadraturePoisson)
{
    const std::size_t n = 128;
    const double lx = 10.0;
    const auto basis = bsplines::BSplineBasis::uniform(3, n, 0.0, lx);
    fft::SpectralPoisson1D spectral(basis);
    vlasov::Poisson1DPeriodic quadrature(basis);
    View1D<double> rho("rho", n);
    View1D<double> e1("e1", n);
    View1D<double> e2("e2", n);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        rho(i) = 1.0 + 0.2 * std::sin(2.0 * std::numbers::pi * pts[i] / lx)
                 + 0.05 * std::cos(6.0 * std::numbers::pi * pts[i] / lx);
    }
    spectral.solve(rho, e1);
    quadrature.solve(rho, e2);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(e1(i), e2(i), 1e-3);
    }
}

TEST(SpectralPoisson, OddGridSizeWorks)
{
    // Bluestein path: n = 100 is not a power of two; nn odd = 81 too.
    const std::size_t n = 81;
    const double lx = 2.0 * std::numbers::pi;
    const auto basis = bsplines::BSplineBasis::uniform(3, n, 0.0, lx);
    fft::SpectralPoisson1D poisson(basis);
    View1D<double> rho("rho", n);
    View1D<double> e("e", n);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        rho(i) = std::cos(3.0 * pts[i]);
    }
    poisson.solve(rho, e);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(e(i), std::sin(3.0 * pts[i]) / 3.0, 1e-11);
    }
}

TEST(SpectralPoisson, RejectsNonUniformBasis)
{
    const auto basis = bsplines::BSplineBasis::non_uniform(
            3, bsplines::stretched_breaks(32, 0.0, 1.0, 0.3));
    EXPECT_DEATH(fft::SpectralPoisson1D{basis}, "uniform");
}

} // namespace
