// Positive coverage of the compile-time contract layer (core/concepts.hpp,
// batched/kernel_traits.hpp): every concept is asserted against the types
// that are documented to model it -- and against a few that must NOT --
// so a refactor that silently un-models a contract fails here, in one
// readable place, before any call site notices.
#include "core/batched_solve.hpp"
#include "core/concepts.hpp"

#include "batched/batched.hpp"
#include "batched/kernel_traits.hpp"
#include "parallel/layout.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/subview.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"
#include "sparse/coo.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace {

using namespace pspl;
using namespace pspl::batched;

// ---------------------------------------------------------------------------
// Layouts.
// ---------------------------------------------------------------------------
static_assert(RegularLayout<LayoutRight>);
static_assert(RegularLayout<LayoutLeft>);
static_assert(!RegularLayout<LayoutStride>);
static_assert(ViewLayout<LayoutRight>);
static_assert(ViewLayout<LayoutLeft>);
static_assert(ViewLayout<LayoutStride>);
static_assert(!ViewLayout<int>);

// ---------------------------------------------------------------------------
// Views: every rank, every layout, plus the solver's PackSpan staging span
// (the structural contract is the point -- both model ViewLike).
// ---------------------------------------------------------------------------
static_assert(ViewLike<View<double, 1>>);
static_assert(ViewLike<View<double, 2>>);
static_assert(ViewLike<View<double, 3>>);
static_assert(ViewLike<View<double, 4>>);
static_assert(ViewLike<View<float, 2, LayoutLeft>>);
static_assert(ViewLike<View<int, 1, LayoutStride>>);
static_assert(!ViewLike<double>);
static_assert(!ViewLike<double*>);

static_assert(ViewOfRank<View1D<double>, 1>);
static_assert(ViewOfRank<View2D<double>, 2>);
static_assert(!ViewOfRank<View2D<double>, 1>);

static_assert(ContiguousViewLike<View2D<double>>);
static_assert(ContiguousViewLike<View3D<float, LayoutLeft>>);
static_assert(!ContiguousViewLike<View<double, 2, LayoutStride>>);

static_assert(DeepCopyCompatible<View2D<double>, View<double, 2, LayoutStride>>);
static_assert(!DeepCopyCompatible<View2D<double>, View1D<double>>);
static_assert(!DeepCopyCompatible<View1D<float>, View1D<double>>);

static_assert(BatchBlockView<View2D<double>>);
static_assert(BatchBlockView<View<float, 2, LayoutStride>>);
static_assert(!BatchBlockView<View1D<double>>);

static_assert(ViewLike<core::detail::PackSpan<double, 4>>);
static_assert(KernelVectorArg<core::detail::PackSpan<double, 4>>);
static_assert(KernelVectorArg<core::detail::PackSpan<float, 8>>);

// ---------------------------------------------------------------------------
// Subview slicers.
// ---------------------------------------------------------------------------
static_assert(SubviewSlicer<all_t>);
static_assert(SubviewSlicer<decltype(ALL)>);
static_assert(SubviewSlicer<std::pair<std::size_t, std::size_t>>);
static_assert(SubviewSlicer<std::pair<int, int>>);
static_assert(SubviewSlicer<int>);
static_assert(SubviewSlicer<std::size_t>);
static_assert(!SubviewSlicer<double*>);

// ---------------------------------------------------------------------------
// SIMD packs: every element type the solvers instantiate.
// ---------------------------------------------------------------------------
static_assert(SimdPackable<double>);
static_assert(SimdPackable<float>);
static_assert(SimdPackable<int>);
static_assert(SimdPackable<long long>);
static_assert(!SimdPackable<bool>);
static_assert(!SimdPackable<double*>);

static_assert(SimdLaneCount<1>);
static_assert(SimdLaneCount<2>);
static_assert(SimdLaneCount<4>);
static_assert(SimdLaneCount<8>);
static_assert(SimdLaneCount<16>);
static_assert(!SimdLaneCount<0>);
static_assert(!SimdLaneCount<3>);
static_assert(!SimdLaneCount<12>);

static_assert(std::is_same_v<kernel_scalar_t<simd<double, 4>>, double>);
static_assert(std::is_same_v<kernel_scalar_t<simd<float, 8>>, float>);
static_assert(std::is_same_v<kernel_scalar_t<double>, double>);
static_assert(std::is_same_v<kernel_element_t<core::detail::PackSpan<float, 8>>, float>);
static_assert(std::is_same_v<kernel_element_t<View1D<double>>, double>);

// ---------------------------------------------------------------------------
// Dispatch bodies. The negative cases are the contract: mutable lambdas
// (non-const operator()) and arity mismatches must NOT model the concepts.
// ---------------------------------------------------------------------------
using RangeBody = decltype([](std::size_t) {});
using Md2Body = decltype([](std::size_t, std::size_t) {});
using Md3Body = decltype([](std::size_t, std::size_t, std::size_t) {});
using MutableBody = decltype([n = 0](std::size_t) mutable { (void)n; });
using SumBody = decltype([](std::size_t, double&) {});
using ChunkBody = decltype([](const BatchChunk<4>&) {});
using TileBody = decltype([](const BatchTile&) {});

static_assert(DispatchBody<RangeBody>);
static_assert(!DispatchBody<MutableBody>);
static_assert(!DispatchBody<Md2Body>);
static_assert(DispatchBody2<Md2Body>);
static_assert(DispatchBody3<Md3Body>);
static_assert(ReduceBody<SumBody, double>);
static_assert(!ReduceBody<SumBody, float>);
static_assert(BatchSimdBody<ChunkBody, 4>);
static_assert(!BatchSimdBody<ChunkBody, 8>);
static_assert(BatchTileBody<TileBody>);
static_assert(!BatchTileBody<RangeBody>);

// ---------------------------------------------------------------------------
// Precision mixing: widening is exact, FP64 -> FP32 narrows and is banned.
// ---------------------------------------------------------------------------
static_assert(KernelPrecisionCompatible<double, double>);
static_assert(KernelPrecisionCompatible<float, float>);
static_assert(KernelPrecisionCompatible<float, double>);
static_assert(!KernelPrecisionCompatible<double, float>);
static_assert(KernelPrecisionCompatible<double, int>); // int RHS: not a float mix

// ---------------------------------------------------------------------------
// Every shipped serial kernel satisfies the full BatchedSerialKernel
// contract with the argument shapes the drivers actually use.
// ---------------------------------------------------------------------------
using Vec = View1D<double>;
using Mat = View2D<double>;
using Piv = View1D<int>;
using Pack = core::detail::PackSpan<double, 4>;

static_assert(KernelPivotArg<Piv>);
static_assert(!KernelPivotArg<Vec>);
static_assert(KernelCooArg<sparse::Coo>);
static_assert(KernelCooArg<sparse::BasicCoo<float>>);
static_assert(!KernelCooArg<Mat>);

static_assert(BatchedSerialKernel<SerialPttrs<>, Vec, Vec, Vec>);
static_assert(BatchedSerialKernel<SerialPttrs<>, Vec, Vec, Pack>);
static_assert(BatchedSerialKernel<SerialPttrsRecip<>, Vec, Vec, Vec>);
static_assert(BatchedSerialKernel<SerialGttrs<>, Vec, Vec, Vec, Vec, Piv, Vec>);
static_assert(BatchedSerialKernel<SerialGttrsRecip<>, Vec, Vec, Vec, Vec, Piv,
                                  Vec>);
static_assert(BatchedSerialKernel<SerialGetrs<>, Mat, Piv, Vec>);
static_assert(BatchedSerialKernel<SerialGetrs<>, Mat, Piv, Pack>);
static_assert(BatchedSerialKernel<SerialGetrf<>, Mat, Piv>);
static_assert(BatchedSerialKernel<SerialGemv<>, double, Mat, Vec, double, Vec>);
static_assert(BatchedSerialKernel<SerialSpmvCoo, double, sparse::Coo, Vec, Vec>);
static_assert(BatchedSerialKernel<SerialGbtrs<>, Mat, int, int, Piv, Vec>);
static_assert(BatchedSerialKernel<SerialPbtrs<>, Mat, Vec>);
static_assert(BatchedSerialKernel<SerialTbsv<>, Mat, Vec>);
static_assert(BatchedSerialKernel<SerialTrsv<Uplo::Lower>, Mat, Vec>);

// Cost models: each kernel exposes its documented arity, constexpr.
static_assert(HasUnaryCostModel<SerialPttrs<>>);
static_assert(HasUnaryCostModel<SerialPttrsRecip<>>);
static_assert(HasUnaryCostModel<SerialGttrs<>>);
static_assert(HasUnaryCostModel<SerialGttrsRecip<>>);
static_assert(HasUnaryCostModel<SerialGetrs<>>);
static_assert(HasUnaryCostModel<SerialGetrf<>>);
static_assert(HasUnaryCostModel<SerialTrsv<Uplo::Lower>>);
static_assert(HasBinaryCostModel<SerialGemv<>>);
static_assert(HasBinaryCostModel<SerialSpmvCoo>);
static_assert(HasBinaryCostModel<SerialPbtrs<>>);
static_assert(HasBinaryCostModel<SerialTbsv<>>);
static_assert(HasTernaryCostModel<SerialGbtrs<>>);
static_assert(KernelCostModel<SerialPttrs<>>);
static_assert(KernelCostModel<SerialGbtrs<>>);
static_assert(!KernelCostModel<int>);

// The message-carrying validator accepts the shipped kernels.
static_assert(validate_batched_kernel<SerialPttrs<>, Vec, Vec, Vec>());
static_assert(validate_batched_kernel<SerialGetrs<>, Mat, Piv, Vec>());
static_assert(validate_batched_kernel<SerialGetrf<>, Mat, Piv>());

// GETRF's new cost model: the classic 2/3 n^3 LU flop count.
static_assert(SerialGetrf<>::cost(3).flops == 18.0);
static_assert(SerialGetrf<>::cost(3).bytes == 144.0);

// ---------------------------------------------------------------------------
// Runtime smoke: the constrained entry points still dispatch correctly
// (concepts must be zero-cost and zero-behavior-change).
// ---------------------------------------------------------------------------
TEST(Concepts, ConstrainedDispatchStillRuns)
{
    View2D<double> block("block", 3, 5);
    parallel_for("fill", MDRangePolicy<2>({3, 5}),
                 [=](std::size_t i, std::size_t j) {
                     block(i, j) = static_cast<double>(i * 5 + j);
                 });

    double total = 0.0;
    parallel_reduce("sum", std::size_t{15},
                    [=](std::size_t k, double& acc) {
                        acc += block(k / 5, k % 5);
                    },
                    Sum<double>(total));
    EXPECT_DOUBLE_EQ(total, 105.0);

    auto col = subview(block, ALL, std::size_t{2});
    static_assert(ViewOfRank<decltype(col), 1>);
    EXPECT_DOUBLE_EQ(col(1), 7.0);

    auto flipped = transposed_view(block);
    static_assert(BatchBlockView<decltype(flipped)>);
    EXPECT_DOUBLE_EQ(flipped(2, 1), block(1, 2));
}

TEST(Concepts, SimdWideningBroadcastStaysImplicit)
{
    // The narrowing guard must not outlaw the sanctioned mixes: integer
    // literals and widening float -> double broadcasts.
    simd<double, 4> p(1.0f);
    p = p * 2 + 0.5f;
    for (int l = 0; l < 4; ++l) {
        EXPECT_DOUBLE_EQ(p[l], 2.5);
    }

    simd<float, 8> q(2.0f);
    q = q * 3; // int scalar into float lanes: exact
    for (int l = 0; l < 8; ++l) {
        EXPECT_FLOAT_EQ(q[l], 6.0f);
    }
}

} // namespace
