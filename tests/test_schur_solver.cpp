// Tests for the Schur-complement solver (Algorithm 1): correctness against
// a dense LU reference for every spline matrix class, sparsity of the
// corner blocks, and fallback behaviour.
#include "bsplines/collocation.hpp"
#include "bsplines/knots.hpp"
#include "core/schur_solver.hpp"
#include "hostlapack/dense.hpp"
#include "hostlapack/getrf.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using bsplines::collocation_matrix;
using bsplines::stretched_breaks;
using core::SchurSolver;
using core::SolverKind;

View1D<double> wave_rhs(std::size_t n, double phase)
{
    View1D<double> b("b", n);
    for (std::size_t i = 0; i < n; ++i) {
        b(i) = std::sin(0.1 * static_cast<double>(i) + phase)
               + 0.3 * std::cos(0.37 * static_cast<double>(i));
    }
    return b;
}

class SchurParam
    : public ::testing::TestWithParam<std::tuple<int, bool, std::size_t>>
{
protected:
    View2D<double> matrix() const
    {
        const auto [degree, uniform, n] = GetParam();
        const auto basis =
                uniform ? BSplineBasis::uniform(degree, n, 0.0, 1.0)
                        : BSplineBasis::non_uniform(
                                  degree, stretched_breaks(n, 0.0, 1.0, 0.5));
        return collocation_matrix(basis);
    }
};

TEST_P(SchurParam, MatchesDenseReference)
{
    const auto a = matrix();
    const std::size_t n = a.extent(0);
    SchurSolver solver(a);

    // Dense LU reference.
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hostlapack::getrf(lu, ipiv), 0);

    for (const double phase : {0.0, 1.0, 2.5}) {
        auto b = wave_rhs(n, phase);
        auto x_ref = clone(b);
        hostlapack::getrs(lu, ipiv, x_ref);
        auto x = clone(b);
        solver.solve_host(x);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(x(i), x_ref(i), 1e-10) << "i=" << i;
        }
        EXPECT_LT(hostlapack::residual_inf(a, x, b), 1e-11);
    }
}

TEST_P(SchurParam, SelectsTableISolver)
{
    const auto [degree, uniform, n] = GetParam();
    (void)n;
    const auto a = matrix();
    SchurSolver solver(a);
    if (uniform && degree == 3) {
        EXPECT_EQ(solver.kind(), SolverKind::PTTRS);
    } else if (uniform) {
        EXPECT_EQ(solver.kind(), SolverKind::PBTRS);
    } else {
        EXPECT_EQ(solver.kind(), SolverKind::GBTRS);
    }
}

INSTANTIATE_TEST_SUITE_P(
        Splines, SchurParam,
        ::testing::Combine(::testing::Values(3, 4, 5), ::testing::Bool(),
                           ::testing::Values(std::size_t{16}, std::size_t{64},
                                             std::size_t{200})),
        [](const auto& info) {
            const int d = std::get<0>(info.param);
            const bool u = std::get<1>(info.param);
            const std::size_t n = std::get<2>(info.param);
            return std::string("deg") + std::to_string(d)
                   + (u ? "_uniform_" : "_nonuniform_") + std::to_string(n);
        });

TEST(SchurSolver, BetaIsSparseAfterThresholding)
{
    // The paper: for n=1000 uniform cubic, the (999,1) beta block keeps only
    // ~48 nonzeros because |beta_ij| decays exponentially from the corner.
    const std::size_t n = 1000;
    const auto basis = BSplineBasis::uniform(3, n, 0.0, 1.0);
    const auto a = collocation_matrix(basis);
    SchurSolver solver(a);
    const auto& data = solver.device_data();
    ASSERT_EQ(data.k, 1u);
    EXPECT_EQ(data.beta_dense.extent(0), n - 1);
    // Dense beta has n-1 entries; COO keeps a few dozen.
    EXPECT_LT(data.beta_coo.nnz(), 100u);
    EXPECT_GT(data.beta_coo.nnz(), 10u);
    // lambda row has very few entries (2 in the paper).
    EXPECT_LE(data.lambda_coo.nnz(), 4u);
    EXPECT_GE(data.lambda_coo.nnz(), 1u);
}

TEST(SchurSolver, SparsifiedSolveStillAccurate)
{
    // The COO path is only used by the FusedSpmv builder; verify directly
    // that replacing dense corners by their sparsified COO equivalents does
    // not change the solution beyond round-off.
    const std::size_t n = 500;
    const auto basis = BSplineBasis::uniform(3, n, 0.0, 1.0);
    const auto a = collocation_matrix(basis);
    SchurSolver solver(a);
    const auto& s = solver.device_data();

    auto b = wave_rhs(n, 0.3);
    auto x_dense = clone(b);
    solver.solve_host(x_dense);

    // Manual Algorithm 1 with COO corners.
    auto x = clone(b);
    auto x0 = subview(x, std::pair<std::size_t, std::size_t>(0, s.n0));
    auto x1 = subview(x, std::pair<std::size_t, std::size_t>(s.n0, s.n));
    core::solve_q_serial(s, x0);
    s.lambda_coo.spmv_sub(x0, x1);
    batched::SerialGetrs<>::invoke(s.delta_lu, s.delta_ipiv, x1);
    s.beta_coo.spmv_sub(x1, x0);

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x(i), x_dense(i), 1e-12);
    }
    EXPECT_LT(hostlapack::residual_inf(a, x, b), 1e-12);
}

TEST(SchurSolver, HandlesMatrixWithoutCorners)
{
    // Plain SPD tridiagonal (no periodic wrap): k = 0, pure Q solve.
    const std::size_t n = 50;
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 4.0;
        if (i + 1 < n) {
            a(i, i + 1) = -1.0;
            a(i + 1, i) = -1.0;
        }
    }
    SchurSolver solver(a);
    EXPECT_EQ(solver.device_data().k, 0u);
    EXPECT_EQ(solver.kind(), SolverKind::PTTRS);
    auto b = wave_rhs(n, 0.0);
    auto x = clone(b);
    solver.solve_host(x);
    EXPECT_LT(hostlapack::residual_inf(a, x, b), 1e-12);
}

TEST(SchurSolver, FallsBackWhenNotPositiveDefinite)
{
    // Symmetric cyclic tridiagonal that is NOT positive definite:
    // diag 1, off-diag 1 -> eigenvalues 1 + 2cos(theta), some negative.
    // (n = 25 keeps both A and Q nonsingular: 1 + 2cos never hits zero.)
    const std::size_t n = 25;
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 1.0;
        a(i, (i + 1) % n) = 1.0;
        a((i + 1) % n, i) = 1.0;
    }
    SchurSolver solver(a);
    // Structure says PTTRS; factorization must fall back to the pivoted
    // tridiagonal solver.
    EXPECT_EQ(solver.structure().recommended, SolverKind::PTTRS);
    EXPECT_EQ(solver.kind(), SolverKind::GTTRS);
    auto b = wave_rhs(n, 0.7);
    auto x = clone(b);
    solver.solve_host(x);
    EXPECT_LT(hostlapack::residual_inf(a, x, b), 1e-10);
}

TEST(SchurSolver, ThresholdZeroKeepsDenseCorners)
{
    const std::size_t n = 100;
    const auto basis = BSplineBasis::uniform(3, n, 0.0, 1.0);
    const auto a = collocation_matrix(basis);
    SchurSolver::Options opts;
    opts.sparsify_threshold = 0.0;
    SchurSolver solver(a, opts);
    const auto& s = solver.device_data();
    // With no thresholding beta keeps every (generically nonzero) entry.
    EXPECT_GT(s.beta_coo.nnz(), s.n0 / 2);
}

} // namespace
