// Tests for the mini-Ginkgo iterative solvers: CG/BiCGStab/GMRES against
// direct references, block-Jacobi preconditioning, and the chunked
// multi-RHS driver.
#include "hostlapack/dense.hpp"
#include "hostlapack/getrf.hpp"
#include "iterative/bicgstab.hpp"
#include "iterative/cg.hpp"
#include "iterative/bicg.hpp"
#include "iterative/chunked.hpp"
#include "iterative/ilu0.hpp"
#include "iterative/gmres.hpp"
#include "parallel/deep_copy.hpp"
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace {

using namespace pspl;
using iterative::BlockJacobi;
using iterative::ChunkedIterativeSolver;
using iterative::Config;
using iterative::IterativeKind;

View2D<double> spd_dense(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < std::min(n, i + 4); ++j) {
            const double v = dist(rng);
            a(i, j) = v;
            a(j, i) = v;
        }
        a(i, i) = 4.0;
    }
    return a;
}

View2D<double> nonsym_dense(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i > 2 ? i - 2 : 0; j < std::min(n, i + 4); ++j) {
            a(i, j) = dist(rng);
        }
        a(i, i) = 4.0;
    }
    return a;
}

std::vector<double> direct_solve(const View2D<double>& a,
                                 const std::vector<double>& b)
{
    const std::size_t n = a.extent(0);
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    EXPECT_EQ(hostlapack::getrf(lu, ipiv), 0);
    View1D<double> x("x", n);
    for (std::size_t i = 0; i < n; ++i) {
        x(i) = b[i];
    }
    hostlapack::getrs(lu, ipiv, x);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = x(i);
    }
    return out;
}

std::vector<double> wave(std::size_t n, double phase)
{
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = std::sin(0.3 * static_cast<double>(i) + phase);
    }
    return b;
}

TEST(Cg, ConvergesOnSpdSystem)
{
    const std::size_t n = 60;
    const auto dense = spd_dense(n, 1);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 0.0);
    const auto ref = direct_solve(dense, b);
    std::vector<double> x(n, 0.0);
    Config cfg;
    cfg.tolerance = 1e-13;
    const auto r = iterative::cg_solve(a, nullptr, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.relative_residual, 1e-13);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], ref[i], 1e-10);
    }
}

TEST(Cg, PreconditionerReducesIterations)
{
    const std::size_t n = 120;
    const auto dense = spd_dense(n, 2);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 0.4);
    Config cfg;
    cfg.tolerance = 1e-12;

    std::vector<double> x1(n, 0.0);
    const auto plain = iterative::cg_solve(a, nullptr, b, x1, cfg);
    BlockJacobi precond(a, 8);
    std::vector<double> x2(n, 0.0);
    const auto prec = iterative::cg_solve(a, &precond, b, x2, cfg);

    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(prec.converged);
    EXPECT_LE(prec.iterations, plain.iterations);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x1[i], x2[i], 1e-9);
    }
}

TEST(BiCGStab, ConvergesOnNonsymmetricSystem)
{
    const std::size_t n = 80;
    const auto dense = nonsym_dense(n, 3);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 1.0);
    const auto ref = direct_solve(dense, b);
    std::vector<double> x(n, 0.0);
    Config cfg;
    cfg.tolerance = 1e-13;
    const auto r = iterative::bicgstab_solve(a, nullptr, b, x, cfg);
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], ref[i], 1e-9);
    }
}

TEST(Gmres, ConvergesOnNonsymmetricSystem)
{
    const std::size_t n = 80;
    const auto dense = nonsym_dense(n, 4);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 2.0);
    const auto ref = direct_solve(dense, b);
    std::vector<double> x(n, 0.0);
    Config cfg;
    cfg.tolerance = 1e-13;
    const auto r = iterative::gmres_solve(a, nullptr, b, x, cfg);
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], ref[i], 1e-9);
    }
}

TEST(Gmres, RestartStillConverges)
{
    const std::size_t n = 100;
    const auto dense = nonsym_dense(n, 5);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 0.1);
    std::vector<double> x(n, 0.0);
    Config cfg;
    cfg.tolerance = 1e-12;
    cfg.restart = 5; // force several restart cycles
    const auto r = iterative::gmres_solve(a, nullptr, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.relative_residual, 1e-12);
}

TEST(Solvers, ZeroRhsGivesZeroSolution)
{
    const std::size_t n = 20;
    const auto a = sparse::Csr::from_dense(spd_dense(n, 6), 0.0);
    const std::vector<double> b(n, 0.0);
    Config cfg;
    for (int which = 0; which < 3; ++which) {
        std::vector<double> x(n, 5.0); // nonzero guess must be reset
        iterative::ColumnResult r;
        if (which == 0) {
            r = iterative::cg_solve(a, nullptr, b, x, cfg);
        } else if (which == 1) {
            r = iterative::bicgstab_solve(a, nullptr, b, x, cfg);
        } else {
            r = iterative::gmres_solve(a, nullptr, b, x, cfg);
        }
        EXPECT_TRUE(r.converged);
        EXPECT_EQ(r.iterations, 0u);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(x[i], 0.0);
        }
    }
}

TEST(Solvers, GoodInitialGuessConvergesInstantly)
{
    const std::size_t n = 40;
    const auto dense = spd_dense(n, 7);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 0.9);
    const auto ref = direct_solve(dense, b);
    std::vector<double> x = ref; // exact guess
    Config cfg;
    cfg.tolerance = 1e-10;
    const auto r = iterative::cg_solve(a, nullptr, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 0u);
}

TEST(BlockJacobi, ExactForBlockDiagonalMatrix)
{
    // If A itself is block diagonal with blocks <= max_block_size, the
    // preconditioned residual vanishes after one application.
    const std::size_t n = 12;
    const std::size_t bs = 4;
    std::mt19937 rng(8);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> dense("a", n, n);
    for (std::size_t blk = 0; blk < n / bs; ++blk) {
        for (std::size_t i = 0; i < bs; ++i) {
            for (std::size_t j = 0; j < bs; ++j) {
                dense(blk * bs + i, blk * bs + j) = dist(rng);
            }
            dense(blk * bs + i, blk * bs + i) += 4.0;
        }
    }
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    BlockJacobi precond(a, bs);
    EXPECT_EQ(precond.nblocks(), n / bs);

    const auto b = wave(n, 0.2);
    const auto ref = direct_solve(dense, b);
    std::vector<double> z(n);
    precond.apply(b, z);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(z[i], ref[i], 1e-11);
    }
}

TEST(BlockJacobi, RejectsInvalidBlockSize)
{
    const auto a = sparse::Csr::from_dense(spd_dense(8, 9), 0.0);
    EXPECT_DEATH(BlockJacobi(a, 0), "max_block_size");
    EXPECT_DEATH(BlockJacobi(a, 64), "max_block_size");
}

TEST(Chunked, SolvesMultiRhsAcrossChunkBoundaries)
{
    const std::size_t n = 50;
    const std::size_t nrhs = 23;
    const auto dense = nonsym_dense(n, 10);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    Config cfg;
    cfg.tolerance = 1e-12;
    // chunk = 7 forces 4 chunks with a ragged tail.
    ChunkedIterativeSolver solver(a, IterativeKind::BiCGStab, cfg, 7, 4);

    View2D<double> b("b", n, nrhs);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < nrhs; ++j) {
            b(i, j) = std::cos(0.1 * static_cast<double>(i * nrhs + j));
        }
    }
    const auto rhs_copy = clone(b);
    const auto stats = solver.solve_inplace(b);
    EXPECT_TRUE(stats.all_converged);
    EXPECT_EQ(stats.columns, nrhs);
    EXPECT_GT(stats.max_iterations, 0u);
    EXPECT_LE(stats.mean_iterations(),
              static_cast<double>(stats.max_iterations));

    for (std::size_t j = 0; j < nrhs; ++j) {
        std::vector<double> col(n);
        for (std::size_t i = 0; i < n; ++i) {
            col[i] = rhs_copy(i, j);
        }
        const auto ref = direct_solve(dense, col);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(b(i, j), ref[i], 1e-8) << "col " << j;
        }
    }
}

TEST(Chunked, GmresAndBicgstabAgree)
{
    const std::size_t n = 40;
    const std::size_t nrhs = 6;
    const auto dense = nonsym_dense(n, 11);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    Config cfg;
    cfg.tolerance = 1e-13;

    View2D<double> b1("b1", n, nrhs);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < nrhs; ++j) {
            b1(i, j) = std::sin(0.05 * static_cast<double>(i + 3 * j));
        }
    }
    auto b2 = clone(b1);

    ChunkedIterativeSolver s1(a, IterativeKind::GMRES, cfg, 8192, 8);
    ChunkedIterativeSolver s2(a, IterativeKind::BiCGStab, cfg, 8192, 8);
    EXPECT_TRUE(s1.solve_inplace(b1).all_converged);
    EXPECT_TRUE(s2.solve_inplace(b2).all_converged);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < nrhs; ++j) {
            EXPECT_NEAR(b1(i, j), b2(i, j), 1e-8);
        }
    }
}

TEST(Chunked, KindNames)
{
    EXPECT_STREQ(to_string(IterativeKind::CG), "CG");
    EXPECT_STREQ(to_string(IterativeKind::BiCG), "BiCG");
    EXPECT_STREQ(to_string(IterativeKind::BiCGStab), "BiCGStab");
    EXPECT_STREQ(to_string(IterativeKind::GMRES), "GMRES");
}

TEST(BiCG, ConvergesOnNonsymmetricSystem)
{
    const std::size_t n = 70;
    const auto dense = nonsym_dense(n, 15);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 1.3);
    const auto ref = direct_solve(dense, b);
    std::vector<double> x(n, 0.0);
    Config cfg;
    cfg.tolerance = 1e-12;
    const auto r = iterative::bicg_solve(a, nullptr, b, x, cfg);
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], ref[i], 1e-8);
    }
}

TEST(BiCG, ReducesToCgIterationsOnSpdSystem)
{
    // On an SPD matrix BiCG is mathematically equivalent to CG: iteration
    // counts must coincide (each BiCG iteration costs an extra A^T apply).
    const std::size_t n = 90;
    const auto dense = spd_dense(n, 16);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 0.6);
    Config cfg;
    cfg.tolerance = 1e-11;
    std::vector<double> x1(n, 0.0);
    std::vector<double> x2(n, 0.0);
    const auto rc = iterative::cg_solve(a, nullptr, b, x1, cfg);
    const auto rb = iterative::bicg_solve(a, nullptr, b, x2, cfg);
    EXPECT_TRUE(rc.converged);
    EXPECT_TRUE(rb.converged);
    EXPECT_NEAR(static_cast<double>(rc.iterations),
                static_cast<double>(rb.iterations), 1.0);
}

TEST(Ilu0, ExactOnBandedMatrixPattern)
{
    // With zero fill-in required (banded matrix, full band stored), ILU(0)
    // IS the LU factorization: a single application solves the system.
    const std::size_t n = 40;
    const auto dense = nonsym_dense(n, 17);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    iterative::Ilu0 precond(a);
    const auto b = wave(n, 0.2);
    const auto ref = direct_solve(dense, b);
    std::vector<double> z(n);
    precond.apply(b, z);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(z[i], ref[i], 1e-9);
    }
}

TEST(Ilu0, PreconditionedKrylovConvergesInOneIteration)
{
    const std::size_t n = 60;
    const auto dense = nonsym_dense(n, 18);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    iterative::Ilu0 precond(a);
    const auto b = wave(n, 0.8);
    std::vector<double> x(n, 0.0);
    Config cfg;
    cfg.tolerance = 1e-12;
    const auto r = iterative::gmres_solve(a, &precond, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 2u);
}

TEST(Ilu0, BeatsBlockJacobiOnPeriodicSplineMatrix)
{
    // The periodic corners are the only entries ILU(0) approximates, so it
    // needs (far) fewer iterations than block-Jacobi on the spline system.
    const std::size_t n = 200;
    View2D<double> dense("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        dense(i, i) = 2.0 / 3.0;
        dense(i, (i + 1) % n) = 1.0 / 6.0;
        dense((i + 1) % n, i) = 1.0 / 6.0;
    }
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    const auto b = wave(n, 0.5);
    Config cfg;
    cfg.tolerance = 1e-13;

    iterative::Ilu0 ilu(a);
    BlockJacobi bj(a, 8);
    std::vector<double> x1(n, 0.0);
    std::vector<double> x2(n, 0.0);
    const auto ri = iterative::bicgstab_solve(a, &ilu, b, x1, cfg);
    const auto rj = iterative::bicgstab_solve(a, &bj, b, x2, cfg);
    EXPECT_TRUE(ri.converged);
    EXPECT_TRUE(rj.converged);
    EXPECT_LT(ri.iterations, rj.iterations);
}

TEST(Ilu0, ChunkedDriverSupportsIlu0)
{
    const std::size_t n = 50;
    const auto dense = nonsym_dense(n, 19);
    const auto a = sparse::Csr::from_dense(dense, 0.0);
    Config cfg;
    cfg.tolerance = 1e-12;
    ChunkedIterativeSolver solver(a, IterativeKind::BiCGStab, cfg, 16, 0,
                                  /*use_ilu0=*/true);
    View2D<double> b("b", n, 5);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            b(i, j) = std::sin(0.21 * static_cast<double>(i + 7 * j));
        }
    }
    const auto rhs_copy = clone(b);
    const auto stats = solver.solve_inplace(b);
    EXPECT_TRUE(stats.all_converged);
    EXPECT_LE(stats.max_iterations, 3u);
    for (std::size_t j = 0; j < 5; ++j) {
        std::vector<double> col(n);
        for (std::size_t i = 0; i < n; ++i) {
            col[i] = rhs_copy(i, j);
        }
        const auto ref = direct_solve(dense, col);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(b(i, j), ref[i], 1e-8);
        }
    }
}

} // namespace
