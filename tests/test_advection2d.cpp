// Tests for the Strang-split 2-D semi-Lagrangian advection: rigid rotation,
// shear flow, conservation and configuration handling.
#include "advection/semi_lagrangian_2d.hpp"
#include "parallel/deep_copy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using namespace pspl;
using advection::BatchedAdvection2D;
using bsplines::BSplineBasis;

double blob(double x, double y, double cx, double cy)
{
    const double dx = x - cx;
    const double dy = y - cy;
    return std::exp(-(dx * dx + dy * dy) / 0.05);
}

BatchedAdvection2D make_rotation(std::size_t n, double omega, double dt)
{
    const auto basis = BSplineBasis::uniform(3, n, -1.0, 1.0);
    View1D<double> vx("vx", n);
    View1D<double> vy("vy", n);
    BatchedAdvection2D adv(basis, basis, vx, vy, dt);
    for (std::size_t k = 0; k < n; ++k) {
        vx(k) = -omega * adv.points_y()(k);
        vy(k) = omega * adv.points_x()(k);
    }
    return adv;
}

View2D<double> blob_field(const BatchedAdvection2D& adv, double cx, double cy)
{
    View2D<double> f("f", adv.ny(), adv.nx());
    for (std::size_t j = 0; j < adv.ny(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = blob(adv.points_x()(i), adv.points_y()(j), cx, cy);
        }
    }
    return f;
}

TEST(Advection2D, RigidRotationQuarterTurn)
{
    // After a quarter turn the blob at (0.4, 0) must sit at (0, 0.4).
    const std::size_t n = 96;
    const double omega = 1.0;
    const int steps = 50;
    const double dt = (0.5 * std::numbers::pi) / static_cast<double>(steps);
    auto adv = make_rotation(n, omega, dt);
    auto f = blob_field(adv, 0.4, 0.0);
    for (int s = 0; s < steps; ++s) {
        adv.step(f);
    }
    double err = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double exact = blob(adv.points_x()(i), adv.points_y()(j),
                                      0.0, 0.4);
            err = std::max(err, std::abs(f(j, i) - exact));
        }
    }
    EXPECT_LT(err, 5e-3);
}

TEST(Advection2D, FullTurnReturnsInitialCondition)
{
    const std::size_t n = 64;
    const int steps = 100;
    const double dt = 2.0 * std::numbers::pi / static_cast<double>(steps);
    auto adv = make_rotation(n, 1.0, dt);
    auto f = blob_field(adv, 0.35, 0.1);
    const auto f0 = clone(f);
    for (int s = 0; s < steps; ++s) {
        adv.step(f);
    }
    double l2 = 0.0;
    double ref = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double d = f(j, i) - f0(j, i);
            l2 += d * d;
            ref += f0(j, i) * f0(j, i);
        }
    }
    EXPECT_LT(std::sqrt(l2 / ref), 0.05);
}

TEST(Advection2D, MassConservedUnderRotation)
{
    const std::size_t n = 48;
    auto adv = make_rotation(n, 1.0, 0.05);
    auto f = blob_field(adv, 0.3, -0.2);
    double m0 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            m0 += f(j, i);
        }
    }
    for (int s = 0; s < 20; ++s) {
        adv.step(f);
    }
    double m1 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            m1 += f(j, i);
        }
    }
    EXPECT_NEAR(m1, m0, 1e-9 * std::abs(m0));
}

TEST(Advection2D, PureShearMatchesAnalyticSolution)
{
    // vx = s*y, vy = 0: f(x, y, t) = f0(x - s*y*t, y). With vy = 0 the
    // splitting is exact in time; only interpolation error remains.
    const std::size_t n = 96;
    const double shear = 0.8;
    const double dt = 0.02;
    const int steps = 10;
    const auto basis = BSplineBasis::uniform(3, n, -1.0, 1.0);
    View1D<double> vx("vx", n);
    View1D<double> vy("vy", n); // zero
    BatchedAdvection2D adv(basis, basis, vx, vy, dt);
    for (std::size_t k = 0; k < n; ++k) {
        vx(k) = shear * adv.points_y()(k);
    }
    auto f = blob_field(adv, 0.0, 0.0);
    for (int s = 0; s < steps; ++s) {
        adv.step(f);
    }
    const double t = dt * steps;
    double err = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double x = adv.points_x()(i);
            const double y = adv.points_y()(j);
            // wrap the shifted argument into [-1, 1)
            double xs = x - shear * y * t;
            xs -= 2.0 * std::floor((xs + 1.0) / 2.0);
            const double exact = blob(xs, y, 0.0, 0.0);
            err = std::max(err, std::abs(f(j, i) - exact));
        }
    }
    EXPECT_LT(err, 1e-4);
}

TEST(Advection2D, ZeroVelocityIsIdentity)
{
    const std::size_t n = 32;
    const auto basis = BSplineBasis::uniform(3, n, -1.0, 1.0);
    View1D<double> vx("vx", n);
    View1D<double> vy("vy", n);
    BatchedAdvection2D adv(basis, basis, vx, vy, 0.1);
    auto f = blob_field(adv, 0.2, 0.2);
    const auto f0 = clone(f);
    adv.step(f);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(f(j, i), f0(j, i), 1e-12);
        }
    }
}

TEST(Advection2D, FusedTransposeConfigMatchesStandard)
{
    const std::size_t n = 48;
    const auto basis = BSplineBasis::uniform(3, n, -1.0, 1.0);
    View1D<double> vx("vx", n);
    View1D<double> vy("vy", n);
    for (std::size_t k = 0; k < n; ++k) {
        vx(k) = 0.3;
        vy(k) = -0.2;
    }
    BatchedAdvection2D std_adv(basis, basis, vx, vy, 0.04);
    BatchedAdvection2D::Config cfg;
    cfg.fuse_transpose = true;
    BatchedAdvection2D fused_adv(basis, basis, vx, vy, 0.04, cfg);
    auto f1 = blob_field(std_adv, 0.0, 0.3);
    auto f2 = clone(f1);
    for (int s = 0; s < 3; ++s) {
        std_adv.step(f1);
        fused_adv.step(f2);
    }
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_DOUBLE_EQ(f1(j, i), f2(j, i));
        }
    }
}

TEST(Advection2D, RejectsMismatchedVelocityExtents)
{
    const auto bx = BSplineBasis::uniform(3, 16, 0.0, 1.0);
    const auto by = BSplineBasis::uniform(3, 24, 0.0, 1.0);
    View1D<double> wrong("wrong", 16); // should be ny = 24
    View1D<double> vy("vy", 16);
    EXPECT_DEATH(BatchedAdvection2D(bx, by, wrong, vy, 0.1),
                 "vx_of_y");
}

} // namespace
