// Unit tests for the batched-serial device kernels: each solver is checked
// in-place on strided RHS columns inside a parallel region against the host
// reference, which is the exact usage pattern of the spline builder.
#include "batched/batched.hpp"
#include "hostlapack/dense.hpp"
#include "hostlapack/gbtrf.hpp"
#include "hostlapack/getrf.hpp"
#include "hostlapack/gttrf.hpp"
#include "hostlapack/pbtrf.hpp"
#include "hostlapack/pttrf.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/subview.hpp"
#include "sparse/coo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace {

using namespace pspl;
namespace hl = pspl::hostlapack;

View2D<double> random_rhs_block(std::size_t n, std::size_t batch, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> b("b", n, batch);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            b(i, j) = dist(rng);
        }
    }
    return b;
}

TEST(SerialPttrs, MatchesHostReferenceOverBatch)
{
    const std::size_t n = 64;
    const std::size_t batch = 37;
    View1D<double> d("d", n);
    View1D<double> e("e", n - 1);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = 4.0;
        a(i, i) = 4.0;
        if (i + 1 < n) {
            e(i) = -1.0;
            a(i, i + 1) = -1.0;
            a(i + 1, i) = -1.0;
        }
    }
    ASSERT_EQ(hl::pttrf(d, e), 0);

    auto b = random_rhs_block(n, batch, 101);
    auto ref = clone(b);

    parallel_for("pttrs_batch", batch, [=](std::size_t i) {
        auto col = subview(b, ALL, i);
        batched::SerialPttrs<batched::Uplo::Lower,
                             batched::Algo::Pttrs::Unblocked>::invoke(d, e,
                                                                      col);
    });

    for (std::size_t j = 0; j < batch; ++j) {
        auto x = subview(b, ALL, j);
        auto rhs = subview(ref, ALL, j);
        EXPECT_LT(hl::residual_inf(a, x, rhs), 1e-11) << "col " << j;
    }
}

TEST(SerialPttrs, UpperTagBehavesIdentically)
{
    const std::size_t n = 16;
    View1D<double> d("d", n);
    View1D<double> e("e", n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = 5.0;
        if (i + 1 < n) {
            e(i) = 1.0;
        }
    }
    ASSERT_EQ(hl::pttrf(d, e), 0);
    View1D<double> b1("b1", n);
    View1D<double> b2("b2", n);
    for (std::size_t i = 0; i < n; ++i) {
        b1(i) = b2(i) = std::sin(static_cast<double>(i));
    }
    batched::SerialPttrs<batched::Uplo::Lower>::invoke(d, e, b1);
    batched::SerialPttrs<batched::Uplo::Upper>::invoke(d, e, b2);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(b1(i), b2(i));
    }
}

TEST(SerialGttrs, MatchesHostReferenceOverBatch)
{
    const std::size_t n = 50;
    const std::size_t batch = 21;
    std::mt19937 rng(63);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    View1D<double> dl("dl", n - 1);
    View1D<double> d("d", n);
    View1D<double> du("du", n - 1);
    View1D<double> du2("du2", n - 2);
    View1D<int> ipiv("ipiv", n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = 0.2 * dist(rng); // weak diagonal forces pivoting
        a(i, i) = d(i);
        if (i + 1 < n) {
            du(i) = 1.0 + dist(rng);
            dl(i) = -1.0 + dist(rng);
            a(i, i + 1) = du(i);
            a(i + 1, i) = dl(i);
        }
    }
    ASSERT_EQ(hl::gttrf(dl, d, du, du2, ipiv), 0);

    auto b = random_rhs_block(n, batch, 17);
    auto ref = clone(b);
    parallel_for("gttrs_batch", batch, [=](std::size_t i) {
        auto col = subview(b, ALL, i);
        batched::SerialGttrs<>::invoke(dl, d, du, du2, ipiv, col);
    });
    for (std::size_t j = 0; j < batch; ++j) {
        auto x = subview(b, ALL, j);
        auto rhs = subview(ref, ALL, j);
        EXPECT_LT(hl::residual_inf(a, x, rhs), 1e-9) << "col " << j;
    }
}

TEST(SerialGetrs, MatchesHostReferenceOverBatch)
{
    const std::size_t n = 12;
    const std::size_t batch = 25;
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = dist(rng);
        }
        a(i, i) += 5.0;
    }
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::getrf(lu, ipiv), 0);

    auto b = random_rhs_block(n, batch, 55);
    auto ref = clone(b);
    parallel_for("getrs_batch", batch, [=](std::size_t i) {
        auto col = subview(b, ALL, i);
        batched::SerialGetrs<batched::Trans::NoTranspose,
                             batched::Algo::Getrs::Unblocked>::invoke(lu, ipiv,
                                                                      col);
    });
    for (std::size_t j = 0; j < batch; ++j) {
        auto x = subview(b, ALL, j);
        auto rhs = subview(ref, ALL, j);
        EXPECT_LT(hl::residual_inf(a, x, rhs), 1e-10);
    }
}

TEST(SerialGbtrs, MatchesHostReferenceOverBatch)
{
    const std::size_t n = 40;
    const std::size_t kl = 2;
    const std::size_t ku = 3;
    const std::size_t batch = 15;
    std::mt19937 rng(21);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t jlo = i > kl ? i - kl : 0;
        const std::size_t jhi = std::min(n - 1, i + ku);
        for (std::size_t j = jlo; j <= jhi; ++j) {
            a(i, j) = dist(rng);
        }
        a(i, i) += 3.0;
    }
    auto band = hl::pack_band(a, kl, ku);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::gbtrf(band, ipiv), 0);
    const auto ab = band.ab;

    auto b = random_rhs_block(n, batch, 77);
    auto ref = clone(b);
    parallel_for("gbtrs_batch", batch, [=](std::size_t i) {
        auto col = subview(b, ALL, i);
        batched::SerialGbtrs<>::invoke(ab, static_cast<int>(kl),
                                       static_cast<int>(ku), ipiv, col);
    });
    for (std::size_t j = 0; j < batch; ++j) {
        auto x = subview(b, ALL, j);
        auto rhs = subview(ref, ALL, j);
        EXPECT_LT(hl::residual_inf(a, x, rhs), 1e-10);
    }
}

TEST(SerialPbtrs, MatchesHostReferenceOverBatch)
{
    const std::size_t n = 30;
    const std::size_t kd = 2;
    const std::size_t batch = 9;
    std::mt19937 rng(31);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j <= std::min(n - 1, i + kd); ++j) {
            const double v = dist(rng);
            a(i, j) = v;
            a(j, i) = v;
        }
        a(i, i) = 6.0;
    }
    auto sym = hl::pack_sym_band(a, kd);
    ASSERT_EQ(hl::pbtrf(sym), 0);
    const auto ab = sym.ab;

    auto b = random_rhs_block(n, batch, 91);
    auto ref = clone(b);
    parallel_for("pbtrs_batch", batch, [=](std::size_t i) {
        auto col = subview(b, ALL, i);
        batched::SerialPbtrs<>::invoke(ab, col);
    });
    for (std::size_t j = 0; j < batch; ++j) {
        auto x = subview(b, ALL, j);
        auto rhs = subview(ref, ALL, j);
        EXPECT_LT(hl::residual_inf(a, x, rhs), 1e-10);
    }
}

TEST(SerialGemv, NoTransposeAndTranspose)
{
    View2D<double> a("a", 2, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;
    View1D<double> x3("x3", 3);
    x3(0) = 1;
    x3(1) = 1;
    x3(2) = 1;
    View1D<double> y2("y2", 2);
    y2(0) = 1;
    y2(1) = 1;
    batched::SerialGemv<>::invoke(2.0, a, x3, 1.0, y2);
    EXPECT_DOUBLE_EQ(y2(0), 13.0); // 2*6 + 1
    EXPECT_DOUBLE_EQ(y2(1), 31.0); // 2*15 + 1

    View1D<double> x2("x2", 2);
    x2(0) = 1;
    x2(1) = 1;
    View1D<double> y3("y3", 3);
    batched::SerialGemv<batched::Trans::Transpose>::invoke(1.0, a, x2, 0.0,
                                                           y3);
    EXPECT_DOUBLE_EQ(y3(0), 5.0);
    EXPECT_DOUBLE_EQ(y3(1), 7.0);
    EXPECT_DOUBLE_EQ(y3(2), 9.0);
}

TEST(SerialGemv, EquivalentToGlobalGemmOverBatch)
{
    const std::size_t m = 4;
    const std::size_t k = 6;
    const std::size_t batch = 11;
    std::mt19937 rng(3);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", m, k);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            a(i, j) = dist(rng);
        }
    }
    auto x = random_rhs_block(k, batch, 5);
    auto y1 = random_rhs_block(m, batch, 6);
    auto y2 = clone(y1);

    blas::gemm("gemm", -1.0, a, x, 1.0, y1);
    parallel_for("gemv_batch", batch, [=](std::size_t i) {
        auto xc = subview(x, ALL, i);
        auto yc = subview(y2, ALL, i);
        batched::SerialGemv<>::invoke(-1.0, a, xc, 1.0, yc);
    });
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            EXPECT_NEAR(y1(i, j), y2(i, j), 1e-13);
        }
    }
}

TEST(SerialSpmvCoo, MatchesDenseGemv)
{
    const std::size_t m = 8;
    const std::size_t k = 5;
    View2D<double> a("a", m, k);
    a(0, 0) = 1.5;
    a(3, 2) = -2.0;
    a(7, 4) = 0.25;
    a(2, 2) = 4.0;
    const auto coo = sparse::Coo::from_dense(a, 0.0);
    EXPECT_EQ(coo.nnz(), 4u);

    View1D<double> x("x", k);
    for (std::size_t j = 0; j < k; ++j) {
        x(j) = static_cast<double>(j + 1);
    }
    View1D<double> y_dense("yd", m);
    View1D<double> y_coo("yc", m);
    for (std::size_t i = 0; i < m; ++i) {
        y_dense(i) = y_coo(i) = 1.0;
    }
    batched::SerialGemv<>::invoke(-1.0, a, x, 1.0, y_dense);
    batched::SerialSpmvCoo::invoke(-1.0, coo, x, y_coo);
    for (std::size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(y_dense(i), y_coo(i), 1e-14);
    }
}

TEST(SerialGetrf, FactorizesPerBatchEntry)
{
    // The generic multi-matrix mode: every batch entry owns a (slightly
    // different) matrix and factorizes it in-kernel, then solves.
    const std::size_t n = 10;
    const std::size_t batch = 12;
    std::mt19937 rng(71);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View3D<double> mats("mats", batch, n, n);
    for (std::size_t e = 0; e < batch; ++e) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                mats(e, i, j) = dist(rng);
            }
            mats(e, i, i) += 5.0 + static_cast<double>(e);
        }
    }
    auto ref = pspl::View3D<double>("ref", batch, n, n);
    for (std::size_t e = 0; e < batch; ++e) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                ref(e, i, j) = mats(e, i, j);
            }
        }
    }
    View2D<int> ipivs("ipivs", batch, n);
    auto b = random_rhs_block(n, batch, 99);
    auto rhs = clone(b);

    parallel_for("getrf_getrs_batch", batch, [=](std::size_t e) {
        auto a = subview(mats, e, ALL, ALL);
        auto piv = subview(ipivs, e, ALL);
        batched::SerialGetrf<>::invoke(a, piv);
        auto col = subview(b, ALL, e);
        batched::SerialGetrs<>::invoke(a, piv, col);
    });

    for (std::size_t e = 0; e < batch; ++e) {
        auto x = subview(b, ALL, e);
        auto bb = subview(rhs, ALL, e);
        auto a = subview(ref, e, ALL, ALL);
        // residual against the entry's own original matrix
        double r = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                acc += a(i, j) * x(j);
            }
            r = std::max(r, std::abs(acc - bb(i)));
        }
        EXPECT_LT(r, 1e-10) << "entry " << e;
    }
}

TEST(SerialGetrf, AgreesWithHostGetrf)
{
    const std::size_t n = 9;
    std::mt19937 rng(83);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a1("a1", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a1(i, j) = dist(rng);
        }
    }
    auto a2 = clone(a1);
    View1D<int> p1("p1", n);
    View1D<int> p2("p2", n);
    EXPECT_EQ(hl::getrf(a1, p1), batched::SerialGetrf<>::invoke(a2, p2));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(p1(i), p2(i));
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_DOUBLE_EQ(a1(i, j), a2(i, j));
        }
    }
}

TEST(SerialGetrf, ReportsSingularity)
{
    View2D<double> a("a", 3, 3); // zero matrix
    View1D<int> piv("piv", 3);
    EXPECT_GT(batched::SerialGetrf<>::invoke(a, piv), 0);
}

TEST(SerialTrsv, LowerUpperUnitNonUnit)
{
    const std::size_t n = 10;
    std::mt19937 rng(13);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> lo("lo", n, n);
    View2D<double> up("up", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            lo(i, j) = dist(rng);
            up(j, i) = dist(rng);
        }
        lo(i, i) = 3.0 + dist(rng);
        up(i, i) = 3.0 + dist(rng);
    }
    const auto b = random_rhs_block(n, 1, 3);

    // Non-unit lower.
    {
        auto x = clone(b);
        auto col = subview(x, ALL, std::size_t{0});
        batched::SerialTrsv<batched::Uplo::Lower>::invoke(lo, col);
        auto rhs = subview(b, ALL, std::size_t{0});
        EXPECT_LT(hl::residual_inf(lo, col, rhs), 1e-11);
    }
    // Non-unit upper.
    {
        auto x = clone(b);
        auto col = subview(x, ALL, std::size_t{0});
        batched::SerialTrsv<batched::Uplo::Upper>::invoke(up, col);
        auto rhs = subview(b, ALL, std::size_t{0});
        EXPECT_LT(hl::residual_inf(up, col, rhs), 1e-11);
    }
    // Unit-diagonal variants ignore the stored diagonal.
    {
        auto lo_unit = clone(lo);
        for (std::size_t i = 0; i < n; ++i) {
            lo_unit(i, i) = 1.0;
        }
        auto x1 = clone(b);
        auto x2 = clone(b);
        auto c1 = subview(x1, ALL, std::size_t{0});
        auto c2 = subview(x2, ALL, std::size_t{0});
        batched::SerialTrsv<batched::Uplo::Lower,
                            batched::Diag::Unit>::invoke(lo, c1);
        batched::SerialTrsv<batched::Uplo::Lower,
                            batched::Diag::NonUnit>::invoke(lo_unit, c2);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(c1(i), c2(i), 1e-13);
        }
    }
}

TEST(SerialTrsv, ComposesIntoGetrs)
{
    // P^T L U x = b solved as: apply P, unit-lower trsv, upper trsv must
    // agree with SerialGetrs.
    const std::size_t n = 8;
    std::mt19937 rng(29);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = dist(rng);
        }
        a(i, i) += 4.0;
    }
    auto lu = clone(a);
    View1D<int> ipiv("ipiv", n);
    ASSERT_EQ(hl::getrf(lu, ipiv), 0);

    auto b = random_rhs_block(n, 1, 5);
    auto x1 = clone(b);
    auto x2 = clone(b);
    auto c1 = subview(x1, ALL, std::size_t{0});
    auto c2 = subview(x2, ALL, std::size_t{0});
    batched::SerialGetrs<>::invoke(lu, ipiv, c1);

    for (std::size_t k = 0; k < n; ++k) {
        const auto p = static_cast<std::size_t>(ipiv(k));
        if (p != k) {
            std::swap(c2(k), c2(p));
        }
    }
    batched::SerialTrsv<batched::Uplo::Lower, batched::Diag::Unit>::invoke(
            lu, c2);
    batched::SerialTrsv<batched::Uplo::Upper>::invoke(lu, c2);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(c1(i), c2(i));
    }
}

TEST(SerialTbsv, ComposesIntoPbtrs)
{
    // L tbsv then L^T tbsv on the Cholesky band factor == SerialPbtrs.
    const std::size_t n = 25;
    const std::size_t kd = 3;
    std::mt19937 rng(47);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j <= std::min(n - 1, i + kd); ++j) {
            const double v = dist(rng);
            a(i, j) = v;
            a(j, i) = v;
        }
        a(i, i) = 8.0;
    }
    auto sym = hl::pack_sym_band(a, kd);
    ASSERT_EQ(hl::pbtrf(sym), 0);
    const auto ab = sym.ab;

    auto b = random_rhs_block(n, 2, 9);
    auto x1 = clone(b);
    auto x2 = clone(b);
    for (std::size_t j = 0; j < 2; ++j) {
        auto c1 = subview(x1, ALL, j);
        auto c2 = subview(x2, ALL, j);
        batched::SerialPbtrs<>::invoke(ab, c1);
        batched::SerialTbsv<batched::Uplo::Lower,
                            batched::Trans::NoTranspose>::invoke(ab, c2);
        batched::SerialTbsv<batched::Uplo::Lower,
                            batched::Trans::Transpose>::invoke(ab, c2);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_DOUBLE_EQ(c1(i), c2(i));
        }
    }
}

TEST(BlasGemm, ExtentMismatchAborts)
{
    View2D<double> a("a", 2, 3);
    View2D<double> b("b", 4, 2); // wrong inner extent
    View2D<double> c("c", 2, 2);
    EXPECT_DEATH(blas::gemm("bad", 1.0, a, b, 0.0, c), "extent mismatch");
}

} // namespace
